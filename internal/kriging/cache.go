package kriging

import (
	"container/list"
	"math"
	"sync"

	"repro/internal/fnv1a"
	"repro/internal/variogram"
)

// DefaultCacheSize is the factored-system cache capacity selected when an
// interpolator's CacheSize field is zero.
const DefaultCacheSize = 128

// factored is a reusable kriging system: the variogram model identified
// on a support set together with the factorisation of the assembled
// matrix. Building one costs O(n³); reusing it answers further queries on
// the same support in O(n²) (assemble the right-hand side, two triangular
// solves). The min+1 competition is the motivating workload: its Nv
// sibling candidates share one incumbent's neighbourhood, so all but the
// first prediction hit the cache.
type factored struct {
	model variogram.Model
	solve func(b []float64) ([]float64, error)
	// sill is the covariance ceiling of a simple-kriging system; unused
	// (zero) for the ordinary saddle system.
	sill float64
	// cholesky records whether the system was factored by Cholesky
	// (symmetric positive definite covariance form) or fell back to LU
	// (the indefinite ordinary-kriging saddle matrix).
	cholesky bool
}

// cacheRecord is one LRU slot: the fingerprint key plus defensive copies
// of the support used to rule out fingerprint collisions on hit.
type cacheRecord struct {
	key uint64
	xs  [][]float64
	ys  []float64
	sys *factored
}

// systemCache is a mutex-guarded LRU map from support fingerprints to
// factored systems. It is shared by concurrent predictions; the lock is
// held only for the map/list bookkeeping, never during factorisation.
type systemCache struct {
	mu    sync.Mutex
	cap   int
	items map[uint64]*list.Element
	order *list.List // front = most recently used
}

func newSystemCache(capacity int) *systemCache {
	return &systemCache{
		cap:   capacity,
		items: make(map[uint64]*list.Element, capacity),
		order: list.New(),
	}
}

// get returns the cached system for the support, verifying the actual
// coordinates and values so a fingerprint collision can never hand back
// the wrong factorisation.
func (c *systemCache) get(key uint64, xs [][]float64, ys []float64) (*factored, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	rec := el.Value.(*cacheRecord)
	if !supportEqual(rec.xs, rec.ys, xs, ys) {
		return nil, false
	}
	c.order.MoveToFront(el)
	return rec.sys, true
}

// add inserts a freshly factored system, evicting the least recently used
// slot when full. The support slices are copied: neighbourhood buffers
// may be reused by callers between queries.
func (c *systemCache) add(key uint64, xs [][]float64, ys []float64, sys *factored) {
	xsCopy := make([][]float64, len(xs))
	for i, x := range xs {
		xsCopy[i] = append([]float64(nil), x...)
	}
	rec := &cacheRecord{key: key, xs: xsCopy, ys: append([]float64(nil), ys...), sys: sys}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value = rec
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(rec)
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*cacheRecord).key)
	}
}

// len reports the current number of cached systems.
func (c *systemCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// supportFingerprint hashes a support set (coordinates and values) with
// 64-bit FNV-1a over the raw float bits.
func supportFingerprint(xs [][]float64, ys []float64) uint64 {
	h := fnv1a.Mix(fnv1a.Offset, uint64(len(xs)))
	for _, x := range xs {
		h = fnv1a.Mix(h, uint64(len(x)))
		for _, v := range x {
			h = fnv1a.Mix(h, math.Float64bits(v))
		}
	}
	for _, v := range ys {
		h = fnv1a.Mix(h, math.Float64bits(v))
	}
	return h
}

// supportEqual reports whether two support sets are bit-identical.
func supportEqual(axs [][]float64, ays []float64, bxs [][]float64, bys []float64) bool {
	if len(axs) != len(bxs) || len(ays) != len(bys) {
		return false
	}
	for i, ax := range axs {
		bx := bxs[i]
		if len(ax) != len(bx) {
			return false
		}
		for j, v := range ax {
			if math.Float64bits(v) != math.Float64bits(bx[j]) {
				return false
			}
		}
	}
	for i, v := range ays {
		if math.Float64bits(v) != math.Float64bits(bys[i]) {
			return false
		}
	}
	return true
}

// resolveCache interprets the shared CacheSize convention: zero selects
// DefaultCacheSize, negative disables caching.
func resolveCache(once *sync.Once, cache **systemCache, size int) *systemCache {
	once.Do(func() {
		if size >= 0 {
			if size == 0 {
				size = DefaultCacheSize
			}
			*cache = newSystemCache(size)
		}
	})
	return *cache
}
