package kriging

import (
	"container/list"
	"errors"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/fnv1a"
	"repro/internal/linalg"
	"repro/internal/variogram"
)

// DefaultCacheSize is the factored-system cache capacity selected when an
// interpolator's CacheSize field is zero.
const DefaultCacheSize = 128

// maxIncrementalAppend bounds how many trailing points a requested
// support may add over a cached one and still take the incremental
// extension path. Sequential infill grows the support one point per
// round, so a small window catches the motivating workload without
// turning every miss into a prefix search.
const maxIncrementalAppend = 4

// maxExtendChain bounds how many points a factor may accumulate through
// incremental extensions before the next growth forces a full
// refactorisation. Each unpivoted border adds rounding error of its own;
// periodic refactoring keeps the drift far inside the documented 1e-9
// equivalence tolerance.
const maxExtendChain = 32

// errNotExtendable marks a cached system the incremental path cannot
// grow (flat or LU-fallback simple systems, over-long extension chains);
// callers fall back to a full factorisation.
var errNotExtendable = errors.New("kriging: cached system not extendable")

// factored is a reusable kriging system: the variogram model identified
// on a support set together with the factorisation of the assembled
// matrix. Building one costs O(n³); reusing it answers further queries on
// the same support in O(n²) (assemble the right-hand side, two triangular
// solves), and growing it by one support point costs O(n²) through the
// linalg bordered updates instead of a refactorisation. The min+1
// competition and sequential infill are the motivating workloads: sibling
// candidates share one incumbent's neighbourhood, and each infill round
// reuses the previous round's support plus the freshly simulated point.
//
// A factored system is immutable after construction and safe for
// concurrent solves; extensions build a new system around a fresh factor.
type factored struct {
	model variogram.Model
	// lu is the pivoted-LU factor of the ordinary-kriging saddle system
	// (or of a simple-kriging covariance matrix that defeated Cholesky).
	lu *linalg.LU
	// chol is the Cholesky factor of a simple-kriging covariance system.
	chol *linalg.Cholesky
	// sill is the covariance ceiling of a simple-kriging system; unused
	// (zero) for the ordinary saddle system.
	sill float64
	// cholesky records whether the system was factored by Cholesky
	// (symmetric positive definite covariance form) or fell back to LU
	// (the indefinite ordinary-kriging saddle matrix).
	cholesky bool
	// n is the number of support points behind the factor; base is what
	// it was when the factor was last built from scratch. For an extended
	// ordinary system the appended points live after the Lagrange row in
	// factor ordering, so solves go through a positional permutation.
	n, base int
	// scale is the largest off-diagonal semivariance seen at assembly,
	// the base of the diagonal jitter; extensions keep it current so the
	// appended diagonals use the same regularisation rule.
	scale float64
}

// extended reports how many support points were appended since the last
// full factorisation.
func (sys *factored) extended() int { return sys.n - sys.base }

// logicalIndex maps a factor row position to its logical saddle-system
// index (supports 0..n-1 in insertion order, Lagrange row last). The
// factor ordering of an extended system is
//
//	[x_0 .. x_{base-1}, Lagrange, x_base .. x_{n-1}]
//
// because borders can only be appended after the existing rows.
func (sys *factored) logicalIndex(pos int) int {
	switch {
	case pos < sys.base:
		return pos
	case pos == sys.base:
		return sys.n // Lagrange row
	default:
		return pos - 1
	}
}

// solveInto solves the factored system for rhs (in logical order) into
// dst, using s for permutation scratch when the factor was grown
// incrementally. dst must not alias rhs.
func (sys *factored) solveInto(dst, rhs []float64, s *predictScratch) error {
	if sys.chol != nil {
		return sys.chol.SolveInto(dst, rhs)
	}
	if sys.lu == nil {
		return errNotExtendable
	}
	if sys.extended() == 0 {
		return sys.lu.SolveInto(dst, rhs)
	}
	m := len(rhs)
	pb := growFloats(&s.pb, m)
	for pos := 0; pos < m; pos++ {
		pb[pos] = rhs[sys.logicalIndex(pos)]
	}
	sol := growFloats(&s.sol, m)
	if err := sys.lu.SolveInto(sol, pb); err != nil {
		return err
	}
	for pos := 0; pos < m; pos++ {
		dst[sys.logicalIndex(pos)] = sol[pos]
	}
	return nil
}

// solveBatchInto solves the factored system for k right-hand sides of
// length m packed column-major into rhs (each column in logical order),
// writing the solution columns into dst. It is the multi-RHS analogue of
// solveInto: the same permutation handling for incrementally grown
// factors, with the triangular sweeps going through the blocked
// linalg kernels. Because the blocked kernels are bit-identical per
// column to the single-RHS solves, each dst column equals what a
// solveInto call on that column would produce, bit for bit. dst must
// not alias rhs.
func (sys *factored) solveBatchInto(dst, rhs []float64, m, k int, s *predictScratch) error {
	if sys.chol != nil {
		return sys.chol.SolveBatchInto(dst, rhs, k)
	}
	if sys.lu == nil {
		return errNotExtendable
	}
	if sys.extended() == 0 {
		return sys.lu.SolveBatchInto(dst, rhs, k)
	}
	pb := growFloats(&s.pb, m*k)
	for j := 0; j < k; j++ {
		col := rhs[j*m : (j+1)*m]
		pcol := pb[j*m : (j+1)*m]
		for pos := 0; pos < m; pos++ {
			pcol[pos] = col[sys.logicalIndex(pos)]
		}
	}
	sol := growFloats(&s.sol, m*k)
	if err := sys.lu.SolveBatchInto(sol, pb, k); err != nil {
		return err
	}
	for j := 0; j < k; j++ {
		dcol := dst[j*m : (j+1)*m]
		scol := sol[j*m : (j+1)*m]
		for pos := 0; pos < m; pos++ {
			dcol[sys.logicalIndex(pos)] = scol[pos]
		}
	}
	return nil
}

// predictScratch is the per-goroutine buffer set of one prediction:
// right-hand side, solved weights, and the permutation scratch of
// extended factors. Pooled so a cache-hit prediction performs zero heap
// allocations.
type predictScratch struct {
	rhs, w, pb, sol []float64
}

var predictPool = sync.Pool{New: func() any { return new(predictScratch) }}

// growFloats resizes *buf to n elements, reallocating only on growth.
func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// cacheRecord is one LRU slot: the fingerprint key plus defensive copies
// of the support used to rule out fingerprint collisions on hit.
type cacheRecord struct {
	key uint64
	xs  [][]float64
	ys  []float64
	sys *factored
}

// systemCache is a mutex-guarded LRU map from support fingerprints to
// factored systems. It is shared by concurrent predictions; the lock is
// held only for the map/list bookkeeping, never during factorisation.
type systemCache struct {
	mu    sync.Mutex
	cap   int
	items map[uint64]*list.Element
	order *list.List // front = most recently used
	// incrementalHits counts factor extensions served instead of full
	// refactorisations — observability for tests and stats.
	incrementalHits atomic.Int64
}

func newSystemCache(capacity int) *systemCache {
	return &systemCache{
		cap:   capacity,
		items: make(map[uint64]*list.Element, capacity),
		order: list.New(),
	}
}

// get returns the cached system for the support, verifying the actual
// coordinates and values so a fingerprint collision can never hand back
// the wrong factorisation.
func (c *systemCache) get(key uint64, xs [][]float64, ys []float64) (*factored, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	rec := el.Value.(*cacheRecord)
	if !supportEqual(rec.xs, rec.ys, xs, ys) {
		return nil, false
	}
	c.order.MoveToFront(el)
	return rec.sys, true
}

// getPrefix looks for a cached system whose support is a strict prefix
// of (xs, ys) missing at most maxAppend trailing points — the sequential
// infill shape, where each round's support is the previous round's plus
// the freshly simulated configurations. It returns the cached system and
// the prefix length. Only called on an exact-fingerprint miss.
func (c *systemCache) getPrefix(xs [][]float64, ys []float64, maxAppend int) (*factored, int, bool) {
	n := len(xs)
	for m := n - 1; m >= n-maxAppend && m >= 2; m-- {
		key := supportFingerprint(xs[:m], ys[:m])
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			rec := el.Value.(*cacheRecord)
			if supportEqual(rec.xs, rec.ys, xs[:m], ys[:m]) {
				sys := rec.sys
				c.order.MoveToFront(el)
				c.mu.Unlock()
				return sys, m, true
			}
		}
		c.mu.Unlock()
	}
	return nil, 0, false
}

// add inserts a freshly factored system, evicting the least recently used
// slot when full. The support slices are copied: neighbourhood buffers
// may be reused by callers between queries.
func (c *systemCache) add(key uint64, xs [][]float64, ys []float64, sys *factored) {
	xsCopy := make([][]float64, len(xs))
	for i, x := range xs {
		xsCopy[i] = append([]float64(nil), x...)
	}
	rec := &cacheRecord{key: key, xs: xsCopy, ys: append([]float64(nil), ys...), sys: sys}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value = rec
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(rec)
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*cacheRecord).key)
	}
}

// len reports the current number of cached systems.
func (c *systemCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// supportFingerprint hashes a support set (coordinates and values) with
// 64-bit FNV-1a over the raw float bits.
func supportFingerprint(xs [][]float64, ys []float64) uint64 {
	h := fnv1a.Mix(fnv1a.Offset, uint64(len(xs)))
	for _, x := range xs {
		h = fnv1a.Mix(h, uint64(len(x)))
		for _, v := range x {
			h = fnv1a.Mix(h, math.Float64bits(v))
		}
	}
	for _, v := range ys {
		h = fnv1a.Mix(h, math.Float64bits(v))
	}
	return h
}

// supportEqual reports whether two support sets are bit-identical.
func supportEqual(axs [][]float64, ays []float64, bxs [][]float64, bys []float64) bool {
	if len(axs) != len(bxs) || len(ays) != len(bys) {
		return false
	}
	for i, ax := range axs {
		bx := bxs[i]
		if len(ax) != len(bx) {
			return false
		}
		for j, v := range ax {
			if math.Float64bits(v) != math.Float64bits(bx[j]) {
				return false
			}
		}
	}
	for i, v := range ays {
		if math.Float64bits(v) != math.Float64bits(bys[i]) {
			return false
		}
	}
	return true
}

// resolveCache interprets the shared CacheSize convention: zero selects
// DefaultCacheSize, negative disables caching.
func resolveCache(once *sync.Once, cache **systemCache, size int) *systemCache {
	once.Do(func() {
		if size >= 0 {
			if size == 0 {
				size = DefaultCacheSize
			}
			*cache = newSystemCache(size)
		}
	})
	return *cache
}
