package kriging

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/variogram"
)

// Universal implements universal kriging (kriging with a linear drift):
// the field is modelled as a linear trend m(x) = β₀ + Σ β_j·x_j plus a
// stationary residual, and the kriging system is augmented with one
// unbiasedness constraint per drift term.
//
// Ordinary kriging reverts to a weighted mean outside the support hull,
// which is exactly the situation at the frontier of a min+1 phase-1
// descent; with a linear drift the predictor extends the local trend
// instead. The ablation benches compare the two on the recorded
// trajectories.
//
// Drift terms are included per dimension only when the support actually
// varies in that dimension (otherwise the coefficient is unidentifiable
// and the system singular); with too few supports the predictor degrades
// gracefully to ordinary kriging.
type Universal struct {
	// Dist is the separation measure; nil means L1.
	Dist Distance
	// Model, when non-nil, is used for every prediction.
	Model variogram.Model
	// FitKind selects the per-query fit family when Model is nil.
	FitKind variogram.Kind
	// PowerBeta overrides the power-model exponent (see Ordinary).
	PowerBeta float64
	// Nugget regularises the system diagonal.
	Nugget float64
	// SequentialBatch degrades PredictBatch to sequential Predict calls
	// (ablation switch; results are bit-identical either way).
	SequentialBatch bool
}

// Name implements Interpolator.
func (u *Universal) Name() string { return "universal-kriging" }

func (u *Universal) dist() Distance {
	if u.Dist != nil {
		return u.Dist
	}
	return L1Distance
}

// driftDims returns the dimensions along which the support varies; only
// those get a drift coefficient.
func driftDims(xs [][]float64, maxTerms int) []int {
	if len(xs) == 0 {
		return nil
	}
	nv := len(xs[0])
	var dims []int
	for d := 0; d < nv; d++ {
		first := xs[0][d]
		for _, x := range xs[1:] {
			if x[d] != first {
				dims = append(dims, d)
				break
			}
		}
		if len(dims) == maxTerms {
			break
		}
	}
	return dims
}

// Predict implements Interpolator.
func (u *Universal) Predict(xs [][]float64, ys []float64, x []float64) (float64, error) {
	n := len(xs)
	if n == 0 {
		return 0, ErrNoSupport
	}
	if len(ys) != n {
		return 0, fmt.Errorf("kriging: %d coordinates but %d values", n, len(ys))
	}
	if n == 1 {
		return ys[0], nil
	}
	dist := u.dist()
	model := u.Model
	if model == nil {
		var err error
		if u.PowerBeta != 0 {
			model, err = variogram.FitPower(variogram.CloudFromSamples(xs, ys, dist), u.PowerBeta, u.Nugget)
		} else {
			model, err = variogram.FitSamples(u.FitKind, xs, ys, dist, u.Nugget)
		}
		if err != nil {
			return 0, err
		}
	}

	// Each drift term consumes one degree of freedom; keep at least two
	// supports' worth of residual information.
	dims := driftDims(xs, n-2)
	m := 1 + len(dims) // constant + identifiable linear terms
	size := n + m
	g := linalg.NewMatrix(size, size)
	var scale float64
	for j := 0; j < n; j++ {
		for k := j + 1; k < n; k++ {
			gv := model.Gamma(dist(xs[j], xs[k]))
			g.Set(j, k, gv)
			g.Set(k, j, gv)
			if gv > scale {
				scale = gv
			}
		}
	}
	jitter := 1e-12 * (scale + 1)
	for j := 0; j < n; j++ {
		g.Set(j, j, u.Nugget+jitter)
		// Drift columns: f_0 = 1, f_i = x_dims[i-1].
		g.Set(j, n, 1)
		g.Set(n, j, 1)
		for i, d := range dims {
			g.Set(j, n+1+i, xs[j][d])
			g.Set(n+1+i, j, xs[j][d])
		}
	}
	rhs := make([]float64, size)
	for k := 0; k < n; k++ {
		rhs[k] = model.Gamma(dist(x, xs[k]))
	}
	rhs[n] = 1
	for i, d := range dims {
		rhs[n+1+i] = x[d]
	}
	w, err := linalg.Solve(g, rhs)
	if err != nil {
		// A degenerate drift system (e.g. supports on a line queried
		// diagonally) falls back to ordinary kriging rather than
		// failing the evaluation.
		ord := &Ordinary{Dist: u.Dist, Model: model, Nugget: u.Nugget}
		return ord.Predict(xs, ys, x)
	}
	// linalg.Dot is the same kernel the blocked batch path uses, so
	// PredictBatch stays bit-identical to K sequential calls.
	val := linalg.Dot(w[:n], ys)
	if math.IsNaN(val) || math.IsInf(val, 0) {
		return 0, ErrDegenerate
	}
	return val, nil
}
