package linalg

// Unrolled numeric kernels shared by the single- and multi-RHS
// triangular solves. The triangular sweeps are dot-product bound, and a
// straight `s += a[i]*x[i]` loop serialises on the ~4-cycle latency of
// the floating-point add; splitting the sum over two independent
// accumulator chains roughly halves the per-element cost of the
// single-RHS path.
//
// The blocked 4-column variants share each coefficient load across four
// right-hand sides (the BLAS-3 shape of the batch solves) while keeping
// the per-column accumulation order IDENTICAL to the single-column
// kernel: two chains, odd tail element into the first chain, final sum
// chain0+chain1. That makes a column solved through the batch path
// bit-identical to the same column solved through SolveInto — the
// equivalence the kriging batch-prediction tests pin down to the bit.

// dotUnrolled returns a·x over len(a) elements using two accumulator
// chains. x must have at least len(a) elements.
func dotUnrolled(a, x []float64) float64 {
	n := len(a)
	x = x[:n]
	var s0, s1 float64
	i := 0
	for ; i+1 < n; i += 2 {
		s0 += a[i] * x[i]
		s1 += a[i+1] * x[i+1]
	}
	if i < n {
		s0 += a[i] * x[i]
	}
	return s0 + s1
}

// dot4colsGeneric computes the dot of a against four equal-length
// columns packed contiguously in x (column c occupies
// x[c*stride : c*stride+n], n = len(a)), starting each column at element
// offset lo — the argument shape of the blocked triangular sweeps,
// chosen so the whole call fits in integer registers (five separate
// slice headers spill part of the argument list to the caller's stack on
// every per-row call). The loop body is exactly dotUnrolled4's, so each
// column's accumulation replicates dotUnrolled bit for bit.
//
// This is the portable definition of dot4cols; on amd64 the entry point
// is the SSE2 kernel in dot4cols_amd64.s, which packs each column's two
// accumulator chains into the two lanes of one XMM register. Packed
// MULPD/ADDPD are per-lane scalar IEEE-754 operations, so the assembly
// path is bit-identical to this one — TestDot4ColsMatchesGeneric pins
// the two together element for element.
func dot4colsGeneric(a, x []float64, stride, lo int) (r0, r1, r2, r3 float64) {
	n := len(a)
	// Two-step slicing: x[lo : lo+n] would leave the length as the
	// symbolic lo+n-lo, which defeats bounds-check elimination in the
	// loops below; [:n] pins it to n = len(a) outright.
	x0 := x[lo:][:n]
	x1 := x[stride+lo:][:n]
	x2 := x[2*stride+lo:][:n]
	x3 := x[3*stride+lo:][:n]
	var a0, b0, a1, b1, a2, b2, a3, b3 float64
	i := 0
	for ; i+3 < n; i += 4 {
		c0 := a[i]
		a0 += c0 * x0[i]
		a1 += c0 * x1[i]
		a2 += c0 * x2[i]
		a3 += c0 * x3[i]
		c1 := a[i+1]
		b0 += c1 * x0[i+1]
		b1 += c1 * x1[i+1]
		b2 += c1 * x2[i+1]
		b3 += c1 * x3[i+1]
		c2 := a[i+2]
		a0 += c2 * x0[i+2]
		a1 += c2 * x1[i+2]
		a2 += c2 * x2[i+2]
		a3 += c2 * x3[i+2]
		c3 := a[i+3]
		b0 += c3 * x0[i+3]
		b1 += c3 * x1[i+3]
		b2 += c3 * x2[i+3]
		b3 += c3 * x3[i+3]
	}
	for ; i+1 < n; i += 2 {
		c := a[i]
		a0 += c * x0[i]
		a1 += c * x1[i]
		a2 += c * x2[i]
		a3 += c * x3[i]
		d := a[i+1]
		b0 += d * x0[i+1]
		b1 += d * x1[i+1]
		b2 += d * x2[i+1]
		b3 += d * x3[i+1]
	}
	if i < n {
		c := a[i]
		a0 += c * x0[i]
		a1 += c * x1[i]
		a2 += c * x2[i]
		a3 += c * x3[i]
	}
	return a0 + b0, a1 + b1, a2 + b2, a3 + b3
}

// dotUnrolled4 computes a·x0, a·x1, a·x2, a·x3 in one pass, loading each
// coefficient a[i] once for all four columns. Each column's accumulation
// replicates dotUnrolled exactly: the even-index chain a0..a3 and the
// odd-index chain b0..b3 are updated in two separate statement groups so
// at most one coefficient and four products are live at a time — with
// all eight products in flight the compiler runs out of the 15 usable
// XMM registers and spills two accumulators into the loop-carried path,
// which costs more than the shared loads save.
func dotUnrolled4(a, x0, x1, x2, x3 []float64) (r0, r1, r2, r3 float64) {
	n := len(a)
	x0, x1, x2, x3 = x0[:n], x1[:n], x2[:n], x3[:n]
	var a0, b0, a1, b1, a2, b2, a3, b3 float64
	i := 0
	// Four elements per trip halves the loop-control and bounds-check
	// cost per element; chain parity (even index → a, odd → b) and the
	// order within each chain are exactly those of the two-wide loop.
	for ; i+3 < n; i += 4 {
		c0 := a[i]
		a0 += c0 * x0[i]
		a1 += c0 * x1[i]
		a2 += c0 * x2[i]
		a3 += c0 * x3[i]
		c1 := a[i+1]
		b0 += c1 * x0[i+1]
		b1 += c1 * x1[i+1]
		b2 += c1 * x2[i+1]
		b3 += c1 * x3[i+1]
		c2 := a[i+2]
		a0 += c2 * x0[i+2]
		a1 += c2 * x1[i+2]
		a2 += c2 * x2[i+2]
		a3 += c2 * x3[i+2]
		c3 := a[i+3]
		b0 += c3 * x0[i+3]
		b1 += c3 * x1[i+3]
		b2 += c3 * x2[i+3]
		b3 += c3 * x3[i+3]
	}
	for ; i+1 < n; i += 2 {
		c := a[i]
		a0 += c * x0[i]
		a1 += c * x1[i]
		a2 += c * x2[i]
		a3 += c * x3[i]
		d := a[i+1]
		b0 += d * x0[i+1]
		b1 += d * x1[i+1]
		b2 += d * x2[i+1]
		b3 += d * x3[i+1]
	}
	if i < n {
		c := a[i]
		a0 += c * x0[i]
		a1 += c * x1[i]
		a2 += c * x2[i]
		a3 += c * x3[i]
	}
	return a0 + b0, a1 + b1, a2 + b2, a3 + b3
}

// strideDot returns Σ_j d[start+j·stride]·x[j] — the column-access dot
// of the Cholesky backward sweep — with the same two-chain accumulation
// as dotUnrolled.
func strideDot(d []float64, start, stride int, x []float64) float64 {
	n := len(x)
	var s0, s1 float64
	i, p := 0, start
	for ; i+1 < n; i, p = i+2, p+2*stride {
		s0 += d[p] * x[i]
		s1 += d[p+stride] * x[i+1]
	}
	if i < n {
		s0 += d[p] * x[i]
	}
	return s0 + s1
}

// strideDot4 is strideDot over four right-hand-side columns sharing each
// factor-column load; per-column accumulation replicates strideDot, with
// the same two-group statement layout as dotUnrolled4 to stay within the
// XMM register budget.
func strideDot4(d []float64, start, stride int, x0, x1, x2, x3 []float64) (r0, r1, r2, r3 float64) {
	n := len(x0)
	x1, x2, x3 = x1[:n], x2[:n], x3[:n]
	var a0, b0, a1, b1, a2, b2, a3, b3 float64
	i, p := 0, start
	for ; i+1 < n; i, p = i+2, p+2*stride {
		c := d[p]
		a0 += c * x0[i]
		a1 += c * x1[i]
		a2 += c * x2[i]
		a3 += c * x3[i]
		e := d[p+stride]
		b0 += e * x0[i+1]
		b1 += e * x1[i+1]
		b2 += e * x2[i+1]
		b3 += e * x3[i+1]
	}
	if i < n {
		c := d[p]
		a0 += c * x0[i]
		a1 += c * x1[i]
		a2 += c * x2[i]
		a3 += c * x3[i]
	}
	return a0 + b0, a1 + b1, a2 + b2, a3 + b3
}

// axpyUnrolled computes y[i] += a·x[i] over len(x) elements, 4-wide.
// Element updates are independent, so unrolling does not change results.
func axpyUnrolled(a float64, x, y []float64) {
	n := len(x)
	y = y[:n]
	i := 0
	for ; i+3 < n; i += 4 {
		y[i] += a * x[i]
		y[i+1] += a * x[i+1]
		y[i+2] += a * x[i+2]
		y[i+3] += a * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += a * x[i]
	}
}
