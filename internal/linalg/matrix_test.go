package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomMatrix(r *rng.Stream, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = r.NormScaled(0, 1)
	}
	return m
}

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("shape = %dx%d", m.Rows, m.Cols)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("new matrix not zeroed")
		}
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Errorf("FromRows wrong layout: %v", m.Data)
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrShape) {
		t.Errorf("ragged rows: err = %v, want ErrShape", err)
	}
}

func TestIdentityMul(t *testing.T) {
	r := rng.New(1)
	a := randomMatrix(r, 4)
	id := Identity(4)
	left, err := id.Mul(a)
	if err != nil {
		t.Fatal(err)
	}
	right, err := a.Mul(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if !almostEqual(left.Data[i], a.Data[i], 1e-12) || !almostEqual(right.Data[i], a.Data[i], 1e-12) {
			t.Fatal("identity multiplication changed the matrix")
		}
	}
}

func TestMulShapeError(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); !errors.Is(err, ErrShape) {
		t.Errorf("Mul shape error = %v, want ErrShape", err)
	}
}

func TestMulKnown(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	y, err := a.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 3 || y[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", y)
	}
	if _, err := a.MulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Error("MulVec accepted a mis-sized vector")
	}
}

func TestTranspose(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", at.Rows, at.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatal("transpose mismatch")
			}
		}
	}
}

func TestAddScale(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	s := a.Scale(2)
	sum, err := a.Add(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Data {
		if s.Data[i] != sum.Data[i] {
			t.Fatal("2·A != A + A")
		}
	}
	if _, err := a.Add(NewMatrix(3, 3)); !errors.Is(err, ErrShape) {
		t.Error("Add accepted mismatched shapes")
	}
}

func TestCloneIndependent(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) == 99 {
		t.Fatal("Clone shares backing storage")
	}
}

func TestRowColCopies(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	row := a.Row(0)
	row[0] = 99
	if a.At(0, 0) == 99 {
		t.Fatal("Row returned a live view")
	}
	col := a.Col(1)
	if col[0] != 2 || col[1] != 4 {
		t.Errorf("Col(1) = %v", col)
	}
}

func TestIsSymmetric(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 1}})
	if !a.IsSymmetric(0) {
		t.Error("symmetric matrix not detected")
	}
	b, _ := FromRows([][]float64{{1, 2}, {3, 1}})
	if b.IsSymmetric(0.5) {
		t.Error("asymmetric matrix accepted with tight tolerance")
	}
	if !NewMatrix(2, 3).IsSymmetric(0) == false {
		t.Error("non-square matrix reported symmetric")
	}
}

func TestMaxAbs(t *testing.T) {
	a, _ := FromRows([][]float64{{1, -7}, {3, 4}})
	if a.MaxAbs() != 7 {
		t.Errorf("MaxAbs = %v, want 7", a.MaxAbs())
	}
}

func TestStringRenders(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}})
	if a.String() == "" {
		t.Error("String returned empty output")
	}
}

func TestPropertyTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(6)
		a := randomMatrix(r, n)
		att := a.T().T()
		for i := range a.Data {
			if a.Data[i] != att.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyMulAssociativeWithVec(t *testing.T) {
	// (A·B)·x == A·(B·x) within numerical tolerance.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(5)
		a := randomMatrix(r, n)
		b := randomMatrix(r, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormScaled(0, 1)
		}
		ab, err := a.Mul(b)
		if err != nil {
			return false
		}
		lhs, err := ab.MulVec(x)
		if err != nil {
			return false
		}
		bx, err := b.MulVec(x)
		if err != nil {
			return false
		}
		rhs, err := a.MulVec(bx)
		if err != nil {
			return false
		}
		for i := range lhs {
			if !almostEqual(lhs[i], rhs[i], 1e-9*(1+math.Abs(rhs[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
