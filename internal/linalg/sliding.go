package linalg

import "fmt"

// SlidingRefactorBound caps the length of an AppendRow chain inside a
// SlidingCholesky: after this many incremental appends the window is
// refactorised from scratch, bounding the rounding error that O(n²)
// updates accumulate relative to a fresh O(n³) factorisation. The bound
// mirrors the kriging cache's maxExtendChain policy.
const SlidingRefactorBound = 32

// SlidingCholesky maintains the Cholesky factorisation of a sliding
// window over a growing symmetric positive definite system: Append
// borders the window with a new row/column (incremental AppendRow, full
// refactor every SlidingRefactorBound appends or whenever the
// incremental update is rejected as unsafe), and Drop evicts a
// row/column via the O(n²) DropRow downdate. Long infill chains use it
// to keep the support — and so every solve — at bounded n instead of
// growing without limit.
//
// The window matrix is retained so that rejected or due incremental
// updates can fall back to a from-scratch factorisation without help
// from the caller.
type SlidingCholesky struct {
	a         *Matrix
	chol      *Cholesky
	appends   int // incremental appends since the last full factorisation
	refactors int
}

// NewSlidingCholesky factorises a and wraps it in a sliding window. The
// matrix is cloned; the caller's copy is not retained.
func NewSlidingCholesky(a *Matrix) (*SlidingCholesky, error) {
	chol, err := FactorizeCholesky(a)
	if err != nil {
		return nil, err
	}
	return &SlidingCholesky{a: a.Clone(), chol: chol}, nil
}

// Append borders the window with a new row/column (row against the
// existing entries, diag on the diagonal). The factor is extended
// incrementally when the chain bound allows and AppendRow accepts the
// pivot; otherwise the bordered window is refactorised from scratch.
func (s *SlidingCholesky) Append(row []float64, diag float64) error {
	n := s.a.Rows
	if len(row) != n {
		return fmt.Errorf("%w: appended row length %d, want %d", ErrShape, len(row), n)
	}
	m := n + 1
	na := NewMatrix(m, m)
	for i := 0; i < n; i++ {
		copy(na.Data[i*m:i*m+n], s.a.Data[i*n:(i+1)*n])
		na.Data[i*m+n] = row[i]
		na.Data[n*m+i] = row[i]
	}
	na.Data[n*m+n] = diag

	if s.appends+1 < SlidingRefactorBound {
		if chol, err := s.chol.AppendRow(row, diag); err == nil {
			s.a, s.chol = na, chol
			s.appends++
			return nil
		}
		// Unsafe pivot: fall through to the full refactorisation.
	}
	chol, err := FactorizeCholesky(na)
	if err != nil {
		return err
	}
	s.a, s.chol = na, chol
	s.appends = 0
	s.refactors++
	return nil
}

// Drop evicts row/column i from the window via the DropRow downdate,
// falling back to a from-scratch factorisation if the downdate reports
// an unhealthy diagonal.
func (s *SlidingCholesky) Drop(i int) error {
	n := s.a.Rows
	if i < 0 || i >= n || n <= 1 {
		return fmt.Errorf("%w: drop row %d of %d", ErrShape, i, n)
	}
	m := n - 1
	na := NewMatrix(m, m)
	for r, nr := 0, 0; r < n; r++ {
		if r == i {
			continue
		}
		for c, nc := 0, 0; c < n; c++ {
			if c == i {
				continue
			}
			na.Data[nr*m+nc] = s.a.Data[r*n+c]
			nc++
		}
		nr++
	}
	chol, err := s.chol.DropRow(i)
	if err != nil {
		chol, err = FactorizeCholesky(na)
		if err != nil {
			return err
		}
		s.appends = 0
		s.refactors++
	}
	s.a, s.chol = na, chol
	return nil
}

// Factor returns the current window factorisation. The returned factor
// is immutable (Append/Drop replace rather than mutate it), so it stays
// valid for concurrent solves across later window updates.
func (s *SlidingCholesky) Factor() *Cholesky { return s.chol }

// Size returns the current window dimension.
func (s *SlidingCholesky) Size() int { return s.a.Rows }

// Refactors returns how many full from-scratch factorisations the
// window has performed (chain-bound hits plus rejected updates).
func (s *SlidingCholesky) Refactors() int { return s.refactors }
