package linalg

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
)

// FuzzSolveBatch drives the blocked multi-RHS solves with adversarial
// geometry: arbitrary n/k, diagonals scaled toward (and past)
// singularity, non-finite RHS entries, and deliberately mismatched k
// declarations. Invariants pinned regardless of input:
//
//   - no panic, ever (mismatched shapes must surface as ErrShape);
//   - each batch column is bit-identical to the sequential SolveInto
//     solution of the same column;
//   - for comfortably-conditioned systems with finite right-hand sides
//     the outputs are finite.
func FuzzSolveBatch(f *testing.F) {
	f.Add(uint64(1), 6, 3, 1.0, false)
	f.Add(uint64(2), 1, 1, 1e-12, false)
	f.Add(uint64(3), 17, 64, 1e-300, true)
	f.Add(uint64(4), 24, 5, 0.0, false)
	f.Add(uint64(5), 3, 8, -1.0, true)
	f.Fuzz(func(t *testing.T, seed uint64, n, k int, diagScale float64, poisonRHS bool) {
		if n < 0 {
			n = -n
		}
		n = n%24 + 1
		if k < 0 {
			k = -k
		}
		k %= 67
		r := rng.New(seed)
		a := randomSPD(r, n)
		if math.IsNaN(diagScale) {
			diagScale = 1
		}
		// Drag the trailing diagonal toward singularity (or negate it so
		// factorisation itself must reject the matrix).
		a.Set(n-1, n-1, a.At(n-1, n-1)*diagScale)
		b := make([]float64, n*k)
		for i := range b {
			b[i] = r.NormScaled(0, 10)
		}
		if poisonRHS && len(b) > 0 {
			b[r.Intn(len(b))] = math.Inf(1)
			b[r.Intn(len(b))] = math.NaN()
		}
		dst := make([]float64, n*k)
		want := make([]float64, n)

		check := func(name string, batch func(dst, b []float64, k int) error, solve func(dst, b []float64) error) {
			if err := batch(dst, b, k); err != nil {
				t.Fatalf("%s: well-shaped batch rejected: %v", name, err)
			}
			healthy := true
			for j := 0; j < k; j++ {
				if err := solve(want, b[j*n:(j+1)*n]); err != nil {
					t.Fatalf("%s: sequential solve: %v", name, err)
				}
				for i := 0; i < n; i++ {
					got, ref := dst[j*n+i], want[i]
					if got != ref && !(math.IsNaN(got) && math.IsNaN(ref)) {
						t.Fatalf("%s col %d row %d: batch %v != sequential %v", name, j, i, got, ref)
					}
					if !isFinite(ref) {
						healthy = false
					}
				}
			}
			if !poisonRHS && healthy {
				for i := range dst {
					if !isFinite(dst[i]) {
						t.Fatalf("%s: non-finite output %v at %d from finite inputs", name, dst[i], i)
					}
				}
			}
			// Mismatched k must be an error, never a panic or partial write.
			if err := batch(dst, b, k+1); !errors.Is(err, ErrShape) {
				t.Fatalf("%s: k+1 err = %v, want ErrShape", name, err)
			}
			if k > 0 {
				if err := batch(dst[:n*(k-1)], b, k); !errors.Is(err, ErrShape) {
					t.Fatalf("%s: short dst err = %v, want ErrShape", name, err)
				}
			}
		}

		if chol, err := FactorizeCholesky(a); err == nil {
			check("cholesky", chol.SolveBatchInto, chol.SolveInto)
		}
		if lu, err := Factorize(a); err == nil {
			check("lu", lu.SolveBatchInto, lu.SolveInto)
		}
	})
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
