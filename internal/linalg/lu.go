package linalg

import (
	"fmt"
	"math"
)

// LU holds an LU factorisation with partial pivoting: P·A = L·U where L is
// unit lower triangular and U is upper triangular, both packed into lu.
type LU struct {
	lu   *Matrix
	piv  []int // row permutation: piv[i] is the original row in position i
	sign float64
	n    int
}

// Factorize computes the LU decomposition of the square matrix a using
// Doolittle's method with partial (row) pivoting. The input is not
// modified. It returns ErrSingular when a pivot is exactly zero; callers
// that want to detect near-singularity should inspect MinPivot.
func Factorize(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: LU of %dx%d", ErrShape, a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1.0
	for k := 0; k < n; k++ {
		// Find pivot row.
		p := k
		mx := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > mx {
				mx, p = v, i
			}
		}
		if mx == 0 {
			return nil, fmt.Errorf("%w: zero pivot at column %d", ErrSingular, k)
		}
		if p != k {
			// Swap full rows p and k.
			rp := lu.Data[p*n : (p+1)*n]
			rk := lu.Data[k*n : (k+1)*n]
			for j := 0; j < n; j++ {
				rp[j], rk[j] = rk[j], rp[j]
			}
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pivVal := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / pivVal
			lu.Set(i, k, f)
			if f == 0 {
				continue
			}
			ri := lu.Data[i*n : (i+1)*n]
			rk := lu.Data[k*n : (k+1)*n]
			axpyUnrolled(-f, rk[k+1:n], ri[k+1:n])
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign, n: n}, nil
}

// Solve solves A·x = b for x given the factorisation. b is not modified.
func (f *LU) Solve(b []float64) ([]float64, error) {
	x := make([]float64, f.n)
	if err := f.SolveInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto solves A·x = b into dst, allocation-free. dst must not alias
// b: the row permutation scatters b into dst before the substitution
// sweeps.
func (f *LU) SolveInto(dst, b []float64) error {
	if len(b) != f.n || len(dst) != f.n {
		return fmt.Errorf("%w: rhs length %d, dst length %d, want %d", ErrShape, len(b), len(dst), f.n)
	}
	n := f.n
	x := dst
	// Apply permutation: x = P·b.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		row := f.lu.Data[i*n : (i+1)*n]
		x[i] -= dotUnrolled(row[:i], x)
	}
	// Backward substitution with upper triangle.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Data[i*n : (i+1)*n]
		s := dotUnrolled(row[i+1:n], x[i+1:n])
		x[i] = (x[i] - s) / row[i]
	}
	return nil
}

// Size returns the dimension of the factored matrix.
func (f *LU) Size() int { return f.n }

// luExtendTol is the health threshold of Extend: the new diagonal pivot
// (the Schur complement of the border, which gets no row exchange) must
// not be negligible against the existing pivot scale, or later solves
// would amplify rounding error unboundedly. Callers fall back to a full
// (re-pivoted) factorisation on rejection.
const luExtendTol = 1e-10

// Extend grows the factorisation of the n×n matrix A to the bordered
// (n+1)×(n+1) matrix
//
//	A' = ⎡A    col⎤
//	     ⎣rowᵀ corner⎦
//
// in O(n²): two triangular solves for the new column of U and row of L
// plus the Schur-complement corner pivot. The existing pivot order is
// frozen and the new row stays last, so no re-pivoting occurs — Extend
// returns ErrSingular when the unpivoted corner fails the health check,
// and the caller should refactorise from scratch. The receiver is not
// modified; the returned factor shares no state with it.
func (f *LU) Extend(col, row []float64, corner float64) (*LU, error) {
	if len(col) != f.n || len(row) != f.n {
		return nil, fmt.Errorf("%w: border lengths %d/%d, want %d", ErrShape, len(col), len(row), f.n)
	}
	n := f.n
	m := n + 1
	lu := NewMatrix(m, m)
	for i := 0; i < n; i++ {
		copy(lu.Data[i*m:i*m+n], f.lu.Data[i*n:(i+1)*n])
	}
	// New last column of U: L·u = P·col (forward substitution with the
	// unit lower triangle).
	for i := 0; i < n; i++ {
		ri := f.lu.Data[i*n : (i+1)*n]
		s := col[f.piv[i]]
		for k := 0; k < i; k++ {
			s -= ri[k] * lu.Data[k*m+n]
		}
		lu.Data[i*m+n] = s
	}
	// New last row of L: lᵀ·U = rowᵀ (forward substitution through Uᵀ).
	last := lu.Data[n*m : m*m]
	for j := 0; j < n; j++ {
		s := row[j]
		for k := 0; k < j; k++ {
			s -= last[k] * f.lu.Data[k*n+j]
		}
		last[j] = s / f.lu.Data[j*n+j]
	}
	// Corner pivot: the Schur complement corner - lᵀ·u.
	s := corner
	var scale float64
	for k := 0; k < n; k++ {
		s -= last[k] * lu.Data[k*m+n]
		if d := math.Abs(f.lu.Data[k*n+k]); d > scale {
			scale = d
		}
	}
	// Written so a NaN corner (non-finite border input) fails the check
	// and rejects the extension instead of poisoning the factor.
	if !(math.Abs(s) >= luExtendTol*(scale+1)) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("%w: extended corner pivot %g below health threshold", ErrSingular, s)
	}
	last[n] = s
	piv := make([]int, m)
	copy(piv, f.piv)
	piv[n] = n
	return &LU{lu: lu, piv: piv, sign: f.sign, n: m}, nil
}

// Det returns the determinant of the factorised matrix.
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// MinPivot returns the smallest absolute diagonal entry of U, a cheap
// proxy for how close to singular the system is.
func (f *LU) MinPivot() float64 {
	mn := math.Inf(1)
	for i := 0; i < f.n; i++ {
		if v := math.Abs(f.lu.At(i, i)); v < mn {
			mn = v
		}
	}
	return mn
}

// Solve solves the square system a·x = b in one call.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Inverse computes the inverse of a via its LU factorisation. Kriging only
// needs solves, but Eq. 10 of the paper is written with Γ⁻¹ and the tests
// verify both paths agree.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}
