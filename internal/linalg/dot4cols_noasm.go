//go:build !amd64

package linalg

// dot4cols falls back to the portable kernel on targets without an
// assembly implementation.
func dot4cols(a, x []float64, stride, lo int) (r0, r1, r2, r3 float64) {
	return dot4colsGeneric(a, x, stride, lo)
}
