package linalg

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/rng"
)

// borderSPD slices a random (n+1)×(n+1) SPD matrix into its leading n×n
// block plus the border row and corner used to rebuild it incrementally.
func borderSPD(r *rng.Stream, n int) (full, lead *Matrix, border []float64, corner float64) {
	full = randomSPD(r, n+1)
	lead = NewMatrix(n, n)
	for i := 0; i < n; i++ {
		copy(lead.Data[i*n:(i+1)*n], full.Data[i*(n+1):i*(n+1)+n])
	}
	border = make([]float64, n)
	for i := 0; i < n; i++ {
		border[i] = full.At(n, i)
	}
	return full, lead, border, full.At(n, n)
}

// TestCholeskyAppendRowMatchesFull grows a factor by one bordered row and
// demands the result solve the full system as accurately as a
// from-scratch factorisation.
func TestCholeskyAppendRowMatchesFull(t *testing.T) {
	r := rng.New(41)
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(20)
		full, lead, border, corner := borderSPD(r, n)
		base, err := FactorizeCholesky(lead)
		if err != nil {
			t.Fatalf("trial %d: leading block not PD: %v", trial, err)
		}
		ext, err := base.AppendRow(border, corner)
		if err != nil {
			t.Fatalf("trial %d: AppendRow: %v", trial, err)
		}
		ref, err := FactorizeCholesky(full)
		if err != nil {
			t.Fatalf("trial %d: full factorisation: %v", trial, err)
		}
		b := make([]float64, n+1)
		for i := range b {
			b[i] = r.NormScaled(0, 1)
		}
		xe, err := ext.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		xr, err := ref.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xr {
			if math.Abs(xe[i]-xr[i]) > 1e-9*(1+math.Abs(xr[i])) {
				t.Fatalf("trial %d: x[%d] = %v (extended) vs %v (full)", trial, i, xe[i], xr[i])
			}
		}
		// The base factor must be untouched by the extension.
		if base.Size() != n || ext.Size() != n+1 {
			t.Fatalf("trial %d: sizes %d/%d", trial, base.Size(), ext.Size())
		}
	}
}

// TestCholeskyAppendRowRejectsUnsafe checks the cancellation health gate:
// bordering with (nearly) the last existing row makes the extension
// singular, which must be reported rather than absorbed.
func TestCholeskyAppendRowRejectsUnsafe(t *testing.T) {
	r := rng.New(5)
	a := randomSPD(r, 6)
	c, err := FactorizeCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	row := a.Row(5)
	if _, err := c.AppendRow(row, a.At(5, 5)); !errors.Is(err, ErrSingular) {
		t.Fatalf("duplicated border accepted: %v", err)
	}
	if _, err := c.AppendRow(row[:3], 1); !errors.Is(err, ErrShape) {
		t.Fatalf("short border accepted: %v", err)
	}
}

// TestCholeskyDropRowMatchesFull removes each row in turn from random
// factors and compares against factorising the reduced matrix directly
// (the Cholesky factor of an SPD matrix is unique, so the factors — not
// just the solves — must agree).
func TestCholeskyDropRowMatchesFull(t *testing.T) {
	r := rng.New(43)
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(12)
		a := randomSPD(r, n)
		c, err := FactorizeCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		drop := r.Intn(n)
		got, err := c.DropRow(drop)
		if err != nil {
			t.Fatalf("trial %d: DropRow(%d): %v", trial, drop, err)
		}
		red := NewMatrix(n-1, n-1)
		for i := 0; i < n-1; i++ {
			for j := 0; j < n-1; j++ {
				si, sj := i, j
				if si >= drop {
					si++
				}
				if sj >= drop {
					sj++
				}
				red.Set(i, j, a.At(si, sj))
			}
		}
		want, err := FactorizeCholesky(red)
		if err != nil {
			t.Fatal(err)
		}
		gl, wl := got.L(), want.L()
		for i := 0; i < n-1; i++ {
			for j := 0; j <= i; j++ {
				if math.Abs(gl.At(i, j)-wl.At(i, j)) > 1e-9*(1+math.Abs(wl.At(i, j))) {
					t.Fatalf("trial %d drop %d: L[%d][%d] = %v, want %v", trial, drop, i, j, gl.At(i, j), wl.At(i, j))
				}
			}
		}
	}
	c, _ := FactorizeCholesky(randomSPD(rng.New(1), 3))
	if _, err := c.DropRow(7); !errors.Is(err, ErrShape) {
		t.Fatalf("out-of-range drop accepted: %v", err)
	}
}

// TestCholeskyAppendDropRoundTrip appends a row then drops it again and
// expects the original factor back.
func TestCholeskyAppendDropRoundTrip(t *testing.T) {
	r := rng.New(44)
	_, lead, border, corner := borderSPD(r, 8)
	base, err := FactorizeCholesky(lead)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := base.AppendRow(border, corner)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ext.DropRow(8)
	if err != nil {
		t.Fatal(err)
	}
	bl, ol := back.L(), base.L()
	for i := 0; i < 8; i++ {
		for j := 0; j <= i; j++ {
			if math.Abs(bl.At(i, j)-ol.At(i, j)) > 1e-10*(1+math.Abs(ol.At(i, j))) {
				t.Fatalf("L[%d][%d] = %v, want %v", i, j, bl.At(i, j), ol.At(i, j))
			}
		}
	}
}

// TestCholeskySolveInto pins the in-place solve against Solve, including
// the documented dst==b aliasing mode.
func TestCholeskySolveInto(t *testing.T) {
	r := rng.New(45)
	a := randomSPD(r, 9)
	c, err := FactorizeCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 9)
	for i := range b {
		b[i] = r.NormScaled(0, 2)
	}
	want, err := c.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 9)
	if err := c.SolveInto(dst, b); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("SolveInto[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	alias := append([]float64(nil), b...)
	if err := c.SolveInto(alias, alias); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if alias[i] != want[i] {
			t.Fatalf("aliased SolveInto[%d] = %v, want %v", i, alias[i], want[i])
		}
	}
	if err := c.SolveInto(dst[:3], b); !errors.Is(err, ErrShape) {
		t.Fatalf("short dst accepted: %v", err)
	}
}

// borderGeneral slices a random well-conditioned (n+1)×(n+1) matrix into
// its leading block and asymmetric borders.
func borderGeneral(r *rng.Stream, n int) (full, lead *Matrix, col, row []float64, corner float64) {
	full = randomMatrix(r, n+1)
	for i := 0; i <= n; i++ {
		full.Set(i, i, full.At(i, i)+float64(n)) // diagonal dominance keeps it comfortably regular
	}
	lead = NewMatrix(n, n)
	col = make([]float64, n)
	row = make([]float64, n)
	for i := 0; i < n; i++ {
		copy(lead.Data[i*n:(i+1)*n], full.Data[i*(n+1):i*(n+1)+n])
		col[i] = full.At(i, n)
		row[i] = full.At(n, i)
	}
	return full, lead, col, row, full.At(n, n)
}

// TestLUExtendMatchesFactorize grows pivoted-LU factors by one bordered
// row/column and compares solves and determinants against refactorising.
func TestLUExtendMatchesFactorize(t *testing.T) {
	r := rng.New(46)
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(20)
		full, lead, col, row, corner := borderGeneral(r, n)
		base, err := Factorize(lead)
		if err != nil {
			t.Fatal(err)
		}
		ext, err := base.Extend(col, row, corner)
		if err != nil {
			t.Fatalf("trial %d: Extend: %v", trial, err)
		}
		ref, err := Factorize(full)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, n+1)
		for i := range b {
			b[i] = r.NormScaled(0, 1)
		}
		xe, err := ext.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		xr, err := ref.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xr {
			if math.Abs(xe[i]-xr[i]) > 1e-9*(1+math.Abs(xr[i])) {
				t.Fatalf("trial %d: x[%d] = %v (extended) vs %v (full)", trial, i, xe[i], xr[i])
			}
		}
		if de, dr := ext.Det(), ref.Det(); math.Abs(de-dr) > 1e-8*(1+math.Abs(dr)) {
			t.Fatalf("trial %d: det %v (extended) vs %v (full)", trial, de, dr)
		}
		if base.Size() != n || ext.Size() != n+1 {
			t.Fatalf("trial %d: sizes %d/%d", trial, base.Size(), ext.Size())
		}
	}
}

// TestLUExtendRejectsSingular checks the corner-pivot health gate: a
// border that makes the matrix singular (last row in the span of the
// others) must be rejected, steering the caller to a full refactor.
func TestLUExtendRejectsSingular(t *testing.T) {
	a, _ := FromRows([][]float64{{2, 1}, {1, 3}})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	// Border equal to row 0 of A with matching corner: rank deficient.
	if _, err := f.Extend([]float64{2, 1}, []float64{2, 1}, 2); !errors.Is(err, ErrSingular) {
		t.Fatalf("singular border accepted: %v", err)
	}
	if _, err := f.Extend([]float64{1}, []float64{1, 2}, 0); !errors.Is(err, ErrShape) {
		t.Fatalf("short border accepted: %v", err)
	}
}

// TestLUSolveInto pins the in-place solve against Solve.
func TestLUSolveInto(t *testing.T) {
	r := rng.New(47)
	a := randomMatrix(r, 7)
	for i := 0; i < 7; i++ {
		a.Set(i, i, a.At(i, i)+7)
	}
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 7)
	for i := range b {
		b[i] = r.NormScaled(0, 2)
	}
	want, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 7)
	if err := f.SolveInto(dst, b); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("SolveInto[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	if err := f.SolveInto(dst, b[:2]); !errors.Is(err, ErrShape) {
		t.Fatalf("short rhs accepted: %v", err)
	}
}

// TestSolveIntoAllocs proves repeated solves against warm factors are
// allocation-free — the contract the kriging predict scratch relies on.
func TestSolveIntoAllocs(t *testing.T) {
	r := rng.New(48)
	spd := randomSPD(r, 12)
	c, err := FactorizeCholesky(spd)
	if err != nil {
		t.Fatal(err)
	}
	gen := randomMatrix(r, 12)
	for i := 0; i < 12; i++ {
		gen.Set(i, i, gen.At(i, i)+12)
	}
	f, err := Factorize(gen)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 12)
	for i := range b {
		b[i] = r.Float64()
	}
	dst := make([]float64, 12)
	if got := testing.AllocsPerRun(200, func() {
		if err := c.SolveInto(dst, b); err != nil {
			t.Fatal(err)
		}
	}); got > 0 {
		t.Errorf("Cholesky.SolveInto allocates %.1f per run, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() {
		if err := f.SolveInto(dst, b); err != nil {
			t.Fatal(err)
		}
	}); got > 0 {
		t.Errorf("LU.SolveInto allocates %.1f per run, want 0", got)
	}
}

// BenchmarkIncrementalFactor measures the support-growth round the
// kriging cache leans on: growing a factored n-point system to n+1 by a
// bordered update versus refactorising the (n+1)-point system from
// scratch, for both factor types. The ≥5× acceptance target of the
// zero-allocation fast-path PR is read off the extend/refactor ratio at
// n=100.
func BenchmarkIncrementalFactor(b *testing.B) {
	for _, n := range []int{50, 100, 200} {
		r := rng.New(uint64(n))
		fullSPD, leadSPD, borderS, cornerS := borderSPD(r, n)
		baseChol, err := FactorizeCholesky(leadSPD)
		if err != nil {
			b.Fatal(err)
		}
		fullG, leadG, colG, rowG, cornerG := borderGeneral(r, n)
		baseLU, err := Factorize(leadG)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("cholesky/extend/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baseChol.AppendRow(borderS, cornerS); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("cholesky/refactor/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := FactorizeCholesky(fullSPD); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("lu/extend/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baseLU.Extend(colG, rowG, cornerG); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("lu/refactor/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Factorize(fullG); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestSlidingCholeskyChain drives a 200-step randomized drop/append
// chain through the sliding window and demands the maintained factor
// match a from-scratch factorisation of the current window matrix to
// 1e-9 at every step. The chain is long enough that the
// SlidingRefactorBound full refactorisations must trigger along the way.
func TestSlidingCholeskyChain(t *testing.T) {
	r := rng.New(90)
	// A big SPD master matrix; every window is a principal submatrix
	// (indices tracked in win), hence SPD itself.
	const master = 260
	m := randomSPD(r, master)
	win := make([]int, 12)
	next := 0
	for i := range win {
		win[i] = next
		next++
	}
	sub := func() *Matrix {
		n := len(win)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, m.At(win[i], win[j]))
			}
		}
		return a
	}
	sw, err := NewSlidingCholesky(sub())
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 0, 64)
	xe := make([]float64, 0, 64)
	xr := make([]float64, 0, 64)
	for step := 0; step < 200; step++ {
		n := len(win)
		doAppend := n <= 6 || (n < 40 && r.Intn(2) == 0)
		if doAppend {
			if next >= master {
				t.Fatalf("step %d: master matrix exhausted", step)
			}
			row := make([]float64, n)
			for i := range row {
				row[i] = m.At(next, win[i])
			}
			if err := sw.Append(row, m.At(next, next)); err != nil {
				t.Fatalf("step %d: Append: %v", step, err)
			}
			win = append(win, next)
			next++
		} else {
			i := r.Intn(n)
			if err := sw.Drop(i); err != nil {
				t.Fatalf("step %d: Drop(%d): %v", step, i, err)
			}
			win = append(win[:i], win[i+1:]...)
		}
		n = len(win)
		if sw.Size() != n {
			t.Fatalf("step %d: window size %d, want %d", step, sw.Size(), n)
		}
		ref, err := FactorizeCholesky(sub())
		if err != nil {
			t.Fatalf("step %d: reference factorisation: %v", step, err)
		}
		b = b[:0]
		for i := 0; i < n; i++ {
			b = append(b, r.NormScaled(0, 1))
		}
		xe = append(xe[:0], b...)
		xr = append(xr[:0], b...)
		if err := sw.Factor().SolveInto(xe, xe); err != nil {
			t.Fatalf("step %d: sliding solve: %v", step, err)
		}
		if err := ref.SolveInto(xr, xr); err != nil {
			t.Fatalf("step %d: reference solve: %v", step, err)
		}
		for i := range xr {
			if math.Abs(xe[i]-xr[i]) > 1e-9*(1+math.Abs(xr[i])) {
				t.Fatalf("step %d: x[%d] = %v (sliding) vs %v (reference)", step, i, xe[i], xr[i])
			}
		}
	}
	if sw.Refactors() == 0 {
		t.Fatalf("200-step chain never hit the %d-append refactor bound", SlidingRefactorBound)
	}
}

// TestSlidingCholeskyRefactorBound pins the chain-length policy exactly:
// an uninterrupted append chain must refactorise from scratch on every
// SlidingRefactorBound-th append and nowhere else.
func TestSlidingCholeskyRefactorBound(t *testing.T) {
	r := rng.New(91)
	const total = 2*SlidingRefactorBound + 5
	m := randomSPD(r, total+4)
	win := 4
	a := NewMatrix(win, win)
	for i := 0; i < win; i++ {
		for j := 0; j < win; j++ {
			a.Set(i, j, m.At(i, j))
		}
	}
	sw, err := NewSlidingCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < total; s++ {
		n := win + s
		row := make([]float64, n)
		for i := range row {
			row[i] = m.At(n, i)
		}
		if err := sw.Append(row, m.At(n, n)); err != nil {
			t.Fatalf("append %d: %v", s, err)
		}
		if want := (s + 1) / SlidingRefactorBound; sw.Refactors() != want {
			t.Fatalf("after %d appends: %d refactors, want %d", s+1, sw.Refactors(), want)
		}
	}
}

// TestCholeskyAppendRowRejectsNonFinite is the regression test for the
// fail-open health guard: a non-finite border (NaN distances from
// duplicate support points pushed through a degenerate anisotropy
// transform) made d2 = diag - v·v NaN, every guard comparison false, and
// AppendRow returned a sqrt(NaN)-poisoned factor as success. It must
// report ErrSingular so callers refactorise instead.
func TestCholeskyAppendRowRejectsNonFinite(t *testing.T) {
	r := rng.New(92)
	base, err := FactorizeCholesky(randomSPD(r, 6))
	if err != nil {
		t.Fatal(err)
	}
	nan := math.NaN()
	cases := []struct {
		name string
		row  []float64
		diag float64
	}{
		{"nan-row", []float64{1, nan, 0, 2, 1, 0}, 50},
		{"nan-diag", []float64{1, 0, 0, 2, 1, 0}, nan},
		{"inf-row", []float64{1, math.Inf(1), 0, 2, 1, 0}, 50},
		{"inf-diag", []float64{1, 0, 0, 2, 1, 0}, math.Inf(1)},
	}
	for _, c := range cases {
		ext, err := base.AppendRow(c.row, c.diag)
		if !errors.Is(err, ErrSingular) {
			t.Errorf("%s: err = %v, want ErrSingular", c.name, err)
		}
		if ext != nil {
			t.Errorf("%s: got a factor alongside the error", c.name)
		}
	}
}

// TestLUExtendRejectsNonFinite: the analogous fail-closed check for the
// LU border extension's corner pivot.
func TestLUExtendRejectsNonFinite(t *testing.T) {
	r := rng.New(93)
	gen := randomMatrix(r, 6)
	for i := 0; i < 6; i++ {
		gen.Set(i, i, gen.At(i, i)+6)
	}
	f, err := Factorize(gen)
	if err != nil {
		t.Fatal(err)
	}
	nan := math.NaN()
	col := []float64{1, 0, 2, 0, 1, 0}
	row := []float64{0, 1, 0, 2, 0, 1}
	cases := []struct {
		name   string
		col    []float64
		row    []float64
		corner float64
	}{
		{"nan-corner", col, row, nan},
		{"nan-col", []float64{1, nan, 2, 0, 1, 0}, row, 9},
		{"nan-row", col, []float64{0, 1, nan, 2, 0, 1}, 9},
		{"inf-corner", col, row, math.Inf(-1)},
	}
	for _, c := range cases {
		ext, err := f.Extend(c.col, c.row, c.corner)
		if !errors.Is(err, ErrSingular) {
			t.Errorf("%s: err = %v, want ErrSingular", c.name, err)
		}
		if ext != nil {
			t.Errorf("%s: got a factor alongside the error", c.name)
		}
	}
}
