package linalg

import "fmt"

// Blocked multi-RHS triangular solves. A batch of k right-hand sides is
// passed as one column-major block: column j occupies b[j*n : (j+1)*n].
// Columns are processed four at a time through the shared-coefficient
// kernels in kernels.go, so each factor row is loaded once per four
// columns instead of once per column (the BLAS-3 shape); leftover
// columns fall through to the single-RHS SolveInto. Because the blocked
// kernels replicate the single-column accumulation order exactly, every
// column of the result is bit-identical to a standalone SolveInto call —
// the property the kriging batch-prediction tests pin down.

// SolveBatchInto solves A·X = B for k right-hand sides packed
// column-major into b, writing the solutions column-major into dst.
// Both slices must have length n·k. dst may alias b (each column is
// solved in place like SolveInto); partial overlap is not supported.
func (c *Cholesky) SolveBatchInto(dst, b []float64, k int) error {
	n := c.n
	if k < 0 || len(b) != n*k || len(dst) != n*k {
		return fmt.Errorf("%w: batch rhs %d, dst %d, want %d×%d", ErrShape, len(b), len(dst), n, k)
	}
	j := 0
	for ; j+3 < k; j += 4 {
		o := j * n
		c.solveBlock4(dst[o:o+4*n], b[o:o+4*n])
	}
	for ; j < k; j++ {
		o := j * n
		if err := c.SolveInto(dst[o:o+n], b[o:o+n]); err != nil {
			return err
		}
	}
	return nil
}

// solveBlock4 solves four systems at once — x and b each pack four
// consecutive columns — sharing each factor-row load. Per-column
// arithmetic replicates SolveInto bit for bit.
func (c *Cholesky) solveBlock4(x, b []float64) {
	n := c.n
	x0, x1, x2, x3 := x[:n], x[n:2*n], x[2*n:3*n], x[3*n:4*n]
	b0, b1, b2, b3 := b[:n], b[n:2*n], b[2*n:3*n], b[3*n:4*n]
	for i := 0; i < n; i++ {
		row := c.l.Data[i*n : i*n+i+1]
		s0, s1, s2, s3 := dot4cols(row[:i], x, n, 0)
		d := row[i]
		x0[i] = (b0[i] - s0) / d
		x1[i] = (b1[i] - s1) / d
		x2[i] = (b2[i] - s2) / d
		x3[i] = (b3[i] - s3) / d
	}
	for i := n - 1; i >= 0; i-- {
		s0, s1, s2, s3 := strideDot4(c.l.Data, (i+1)*n+i, n, x0[i+1:n], x1[i+1:n], x2[i+1:n], x3[i+1:n])
		d := c.l.Data[i*n+i]
		x0[i] = (x0[i] - s0) / d
		x1[i] = (x1[i] - s1) / d
		x2[i] = (x2[i] - s2) / d
		x3[i] = (x3[i] - s3) / d
	}
}

// SolveBatchInto solves A·X = B for k right-hand sides packed
// column-major into b, writing the solutions column-major into dst.
// Both slices must have length n·k. dst must not alias b: like
// SolveInto, the row permutation scatters each b column into the dst
// column before the substitution sweeps.
func (f *LU) SolveBatchInto(dst, b []float64, k int) error {
	n := f.n
	if k < 0 || len(b) != n*k || len(dst) != n*k {
		return fmt.Errorf("%w: batch rhs %d, dst %d, want %d×%d", ErrShape, len(b), len(dst), n, k)
	}
	j := 0
	for ; j+3 < k; j += 4 {
		o := j * n
		f.solveBlock4(dst[o:o+4*n], b[o:o+4*n])
	}
	for ; j < k; j++ {
		o := j * n
		if err := f.SolveInto(dst[o:o+n], b[o:o+n]); err != nil {
			return err
		}
	}
	return nil
}

// solveBlock4 solves four systems at once — x and b each pack four
// consecutive columns — sharing each factor-row load. Per-column
// arithmetic replicates SolveInto bit for bit.
func (f *LU) solveBlock4(x, b []float64) {
	n := f.n
	lu := f.lu.Data
	x0, x1, x2, x3 := x[:n], x[n:2*n], x[2*n:3*n], x[3*n:4*n]
	b0, b1, b2, b3 := b[:n], b[n:2*n], b[2*n:3*n], b[3*n:4*n]
	for i := 0; i < n; i++ {
		p := f.piv[i]
		x0[i] = b0[p]
		x1[i] = b1[p]
		x2[i] = b2[p]
		x3[i] = b3[p]
	}
	for i := 1; i < n; i++ {
		row := lu[i*n : (i+1)*n]
		s0, s1, s2, s3 := dot4cols(row[:i], x, n, 0)
		x0[i] -= s0
		x1[i] -= s1
		x2[i] -= s2
		x3[i] -= s3
	}
	for i := n - 1; i >= 0; i-- {
		row := lu[i*n : (i+1)*n]
		s0, s1, s2, s3 := dot4cols(row[i+1:n], x, n, i+1)
		d := row[i]
		x0[i] = (x0[i] - s0) / d
		x1[i] = (x1[i] - s1) / d
		x2[i] = (x2[i] - s2) / d
		x3[i] = (x3[i] - s3) / d
	}
}
