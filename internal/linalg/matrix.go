package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular is returned when a factorisation encounters an (effectively)
// singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("linalg: dimension mismatch")

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0), nil
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrShape, i, len(row), c)
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("%w: (%dx%d)·(%dx%d)", ErrShape, m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			rowB := b.Data[k*b.Cols : (k+1)*b.Cols]
			rowO := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range rowB {
				rowO[j] += a * bv
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if m.Cols != len(x) {
		return nil, fmt.Errorf("%w: (%dx%d)·vec(%d)", ErrShape, m.Rows, m.Cols, len(x))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Add returns m + b element-wise.
func (m *Matrix) Add(b *Matrix) (*Matrix, error) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return nil, ErrShape
	}
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out, nil
}

// Scale returns s·m as a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// IsSymmetric reports whether the matrix is square and symmetric to within
// tol (absolute).
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the largest absolute entry (the max norm).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%.6g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}
