// SSE2 kernel behind dot4cols on amd64 (SSE2 is the amd64 baseline, so
// no feature detection is needed). The two accumulator chains of each
// column live in the two lanes of one XMM register: lane 0 carries the
// even-index chain, lane 1 the odd-index chain, exactly the a/b pairs of
// the portable dot4colsGeneric. MOVUPD loads the coefficient pair
// [a[i], a[i+1]] once and MULPD/ADDPD — per-lane scalar IEEE-754
// multiply and add — feed all four columns, so each chain sees the same
// elements in the same order as the pure-Go kernel and every result bit
// matches. The odd tail element is accumulated with scalar MULSD/ADDSD
// into lane 0 (the even chain), and the final per-column reduction adds
// lane 0 + lane 1 in that order, mirroring the generic `a + b` return.
//
// All streams advance through one byte index (BX) against precomputed
// limits, keeping the loop overhead to a single add per four elements —
// the triangular sweeps call this once per row, so the short-length cost
// matters as much as the streaming rate.
//
// func dot4colsSSE2(a *float64, n int, x *float64, stride int, out *[4]float64)
// Reads a[0:n] and x[c*stride : c*stride+n] for c = 0..3; the Go wrapper
// performs the bounds checks before handing raw pointers over.

#include "textflag.h"

TEXT ·dot4colsSSE2(SB), NOSPLIT, $0-40
	MOVQ a+0(FP), SI
	MOVQ n+8(FP), DX
	MOVQ x+16(FP), R8
	MOVQ stride+24(FP), AX
	MOVQ out+32(FP), R12

	// Column base pointers: R8 + c*stride*8 for c = 0..3.
	SHLQ $3, AX
	MOVQ R8, R9
	ADDQ AX, R9
	MOVQ R9, R10
	ADDQ AX, R10
	MOVQ R10, R11
	ADDQ AX, R11

	// X0..X3 = [even chain, odd chain] accumulators for columns 0..3.
	PXOR X0, X0
	PXOR X1, X1
	PXOR X2, X2
	PXOR X3, X3

	// Byte index and loop limits: R14 = (n &^ 3)·8, R13 = (n &^ 1)·8,
	// DX = n·8.
	XORQ BX, BX
	MOVQ DX, R14
	ANDQ $-4, R14
	SHLQ $3, R14
	MOVQ DX, R13
	ANDQ $-2, R13
	SHLQ $3, R13
	SHLQ $3, DX

loop4:
	// Four elements per trip: coefficient pairs [a[i],a[i+1]] in X4 and
	// [a[i+2],a[i+3]] in X9; both ADDPDs target the same accumulator, so
	// within each chain the element order matches the generic 4-wide loop.
	CMPQ BX, R14
	JGE  step2
	MOVUPD (SI)(BX*1), X4
	MOVUPD 16(SI)(BX*1), X9
	MOVUPD (R8)(BX*1), X5
	MULPD  X4, X5
	ADDPD  X5, X0
	MOVUPD 16(R8)(BX*1), X10
	MULPD  X9, X10
	ADDPD  X10, X0
	MOVUPD (R9)(BX*1), X6
	MULPD  X4, X6
	ADDPD  X6, X1
	MOVUPD 16(R9)(BX*1), X11
	MULPD  X9, X11
	ADDPD  X11, X1
	MOVUPD (R10)(BX*1), X7
	MULPD  X4, X7
	ADDPD  X7, X2
	MOVUPD 16(R10)(BX*1), X12
	MULPD  X9, X12
	ADDPD  X12, X2
	MOVUPD (R11)(BX*1), X8
	MULPD  X4, X8
	ADDPD  X8, X3
	MOVUPD 16(R11)(BX*1), X13
	MULPD  X9, X13
	ADDPD  X13, X3
	ADDQ $32, BX
	JMP  loop4

step2:
	// At most one two-element step remains below the 4-wide limit.
	CMPQ BX, R13
	JGE  tail
	MOVUPD (SI)(BX*1), X4
	MOVUPD (R8)(BX*1), X5
	MULPD  X4, X5
	ADDPD  X5, X0
	MOVUPD (R9)(BX*1), X6
	MULPD  X4, X6
	ADDPD  X6, X1
	MOVUPD (R10)(BX*1), X7
	MULPD  X4, X7
	ADDPD  X7, X2
	MOVUPD (R11)(BX*1), X8
	MULPD  X4, X8
	ADDPD  X8, X3
	ADDQ $16, BX

tail:
	// Odd trailing element: even chain (lane 0), like the generic kernel.
	CMPQ BX, DX
	JGE  done
	MOVSD (SI)(BX*1), X4
	MOVSD (R8)(BX*1), X5
	MULSD X4, X5
	ADDSD X5, X0
	MOVSD (R9)(BX*1), X6
	MULSD X4, X6
	ADDSD X6, X1
	MOVSD (R10)(BX*1), X7
	MULSD X4, X7
	ADDSD X7, X2
	MOVSD (R11)(BX*1), X8
	MULSD X4, X8
	ADDSD X8, X3

done:
	// Per-column reduction: out[c] = lane0 + lane1 (even + odd chain).
	MOVAPD   X0, X4
	UNPCKHPD X4, X4
	ADDSD    X4, X0
	MOVSD    X0, (R12)
	MOVAPD   X1, X4
	UNPCKHPD X4, X4
	ADDSD    X4, X1
	MOVSD    X1, 8(R12)
	MOVAPD   X2, X4
	UNPCKHPD X4, X4
	ADDSD    X4, X2
	MOVSD    X2, 16(R12)
	MOVAPD   X3, X4
	UNPCKHPD X4, X4
	ADDSD    X4, X3
	MOVSD    X3, 24(R12)
	RET
