// Package linalg implements the small dense linear-algebra kernel needed
// by the kriging solver: matrices, vectors, LU decomposition with partial
// pivoting, Cholesky decomposition and triangular solves.
//
// The kriging systems in this reproduction are tiny to moderate (a
// handful to a few hundred support points plus one Lagrange row), so the
// implementation favours clarity and numerical robustness; the one
// concession to throughput is the blocked multi-RHS path below, whose
// kernels stay bit-compatible with the scalar ones. Everything is
// written against the standard library only.
//
// # Factorisations
//
// [Factorize] produces a pivoted LU factor for general square systems —
// the symmetric indefinite saddle matrix of ordinary kriging (Eq. 9)
// takes this path. [FactorizeCholesky] covers symmetric positive
// definite systems — the covariance form of simple kriging.
//
// # Incremental updates
//
// Sequential infill grows a kriging support one point per round, so both
// factor types support growing (and, for Cholesky, shrinking) an
// existing factorisation in O(n²) instead of refactorising in O(n³):
//
//   - [Cholesky.AppendRow] extends A = L·Lᵀ to the bordered matrix with
//     one new symmetric row/column.
//   - [Cholesky.DropRow] removes one row/column via Givens-style rank-1
//     restoration.
//   - [LU.Extend] extends P·A = L·U to the bordered matrix, freezing the
//     pivot order of the existing rows and placing the new row last.
//
// Updates never mutate the receiver — they return a fresh factor, so a
// factor shared by concurrent readers (the kriging system cache) stays
// valid. Both growth updates apply a pivot/diagonal health check and
// return [ErrSingular] when the new pivot is negligible against the
// factor scale; callers are expected to fall back to a full
// refactorisation in that case. Within that health margin an updated
// factor solves the same system as a from-scratch factorisation to well
// under 1e-9 relative error (asserted by the kriging property tests).
//
// # Blocked multi-RHS solves
//
// A batch of k right-hand sides against one factor solves as a
// column-major block through [Cholesky.SolveBatchInto] /
// [LU.SolveBatchInto]: columns are swept four at a time, sharing each
// factor-row load across the four columns (the BLAS-3 shape), with
// leftover columns falling through to SolveInto. The inner kernels keep
// each column's two-chain accumulation order exactly that of the
// single-RHS path, so every column of a batch solve is BIT-IDENTICAL to
// a standalone SolveInto — the contract the kriging batch-prediction
// property tests pin down. On amd64 the 4-column dot kernel is SSE2
// assembly (dot4cols_amd64.s) that maps the two accumulator chains onto
// the two lanes of one XMM register; per-lane packed arithmetic is
// scalar IEEE-754, so the assembly and portable kernels agree bit for
// bit (differentially tested). [Dot4] exposes the same 4-wide kernel
// for composing batch outputs from weight columns.
//
// # Scratch discipline
//
// The Solve methods allocate their result; the SolveInto variants write
// into a caller-provided destination so repeated solves against one
// factor (the kriging prediction hot path) can reuse scratch buffers and
// stay allocation-free. [Cholesky.SolveInto] tolerates dst aliasing b;
// [LU.SolveInto] does not (the row permutation scatters b into dst).
// [Cholesky.SolveBatchInto] likewise tolerates dst aliasing b while
// [LU.SolveBatchInto] requires distinct blocks.
package linalg
