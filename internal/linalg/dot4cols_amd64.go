package linalg

// dot4colsSSE2 is implemented in dot4cols_amd64.s. It reads a[0:n] and
// x[c*stride : c*stride+n] for c = 0..3 through raw pointers; dot4cols
// re-establishes the slice bounds before the call.
//
//go:noescape
func dot4colsSSE2(a *float64, n int, x *float64, stride int, out *[4]float64)

// dot4cols dispatches to the SSE2 kernel; see dot4colsGeneric in
// kernels.go for the reference semantics and the bit-identity argument.
func dot4cols(a, x []float64, stride, lo int) (r0, r1, r2, r3 float64) {
	n := len(a)
	// Bounds, kept to one branch pair per call (the sweeps call this per
	// row): with stride and lo non-negative, every read of column c lies
	// in [lo, 3·stride+lo+n), so checking the last index of the last
	// column covers all four. The assembly trusts the pointers it is
	// handed.
	if stride < 0 || lo < 0 {
		panic("linalg: dot4cols negative stride or offset")
	}
	if n == 0 {
		_ = x[3*stride+lo:] // same shape panic as the generic slicings
		return 0, 0, 0, 0
	}
	_ = x[3*stride+lo+n-1]
	var out [4]float64
	dot4colsSSE2(&a[0], n, &x[lo], stride, &out)
	return out[0], out[1], out[2], out[3]
}
