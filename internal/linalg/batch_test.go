package linalg

import (
	"errors"
	"math"
	"testing"

	"repro/internal/raceflag"
	"repro/internal/rng"
)

// skipUnderRace skips allocation gates when race instrumentation (which
// allocates on its own) is compiled in; scripts/check_allocs.sh runs
// them without -race.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceflag.Enabled {
		t.Skip("allocation gates are measured without -race (see scripts/check_allocs.sh)")
	}
}

// TestSolveBatchMatchesSolveInto is the bit-identity contract of the
// blocked solves: every column of a SolveBatchInto result must equal the
// standalone SolveInto solution of that column EXACTLY (not to a
// tolerance) for both factor types, across block-remainder shapes.
func TestSolveBatchMatchesSolveInto(t *testing.T) {
	r := rng.New(83)
	for _, n := range []int{1, 2, 3, 5, 12, 33} {
		for _, k := range []int{0, 1, 2, 3, 4, 5, 7, 8, 64} {
			a := randomSPD(r, n)
			b := make([]float64, n*k)
			for i := range b {
				b[i] = r.NormScaled(0, 3)
			}

			chol, err := FactorizeCholesky(a)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			got := make([]float64, n*k)
			if err := chol.SolveBatchInto(got, b, k); err != nil {
				t.Fatalf("n=%d k=%d: cholesky batch: %v", n, k, err)
			}
			want := make([]float64, n)
			for j := 0; j < k; j++ {
				if err := chol.SolveInto(want, b[j*n:(j+1)*n]); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < n; i++ {
					if got[j*n+i] != want[i] {
						t.Fatalf("cholesky n=%d k=%d col %d row %d: batch %v != sequential %v",
							n, k, j, i, got[j*n+i], want[i])
					}
				}
			}

			lu, err := Factorize(a)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if err := lu.SolveBatchInto(got, b, k); err != nil {
				t.Fatalf("n=%d k=%d: lu batch: %v", n, k, err)
			}
			for j := 0; j < k; j++ {
				if err := lu.SolveInto(want, b[j*n:(j+1)*n]); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < n; i++ {
					if got[j*n+i] != want[i] {
						t.Fatalf("lu n=%d k=%d col %d row %d: batch %v != sequential %v",
							n, k, j, i, got[j*n+i], want[i])
					}
				}
			}
		}
	}
}

// TestSolveBatchAliasedCholesky pins the documented aliasing contract:
// the Cholesky batch solve may run in place over the RHS block.
func TestSolveBatchAliasedCholesky(t *testing.T) {
	r := rng.New(84)
	const n, k = 9, 6
	a := randomSPD(r, n)
	chol, err := FactorizeCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n*k)
	for i := range b {
		b[i] = r.NormScaled(0, 1)
	}
	want := make([]float64, n*k)
	if err := chol.SolveBatchInto(want, b, k); err != nil {
		t.Fatal(err)
	}
	if err := chol.SolveBatchInto(b, b, k); err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if b[i] != want[i] {
			t.Fatalf("in-place batch solve diverged at %d: %v vs %v", i, b[i], want[i])
		}
	}
}

// TestSolveBatchShapeErrors demands ErrShape (never a panic, never a
// partial write) on inconsistent block geometry.
func TestSolveBatchShapeErrors(t *testing.T) {
	r := rng.New(85)
	const n = 7
	a := randomSPD(r, n)
	chol, err := FactorizeCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	lu, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, n*4)
	cases := []struct {
		dst, b []float64
		k      int
	}{
		{buf, buf, 3},         // length n*4 declared as k=3
		{buf[:n*3], buf, 4},   // short dst
		{buf, buf[:n*3], 4},   // short rhs
		{buf, buf, -1},        // negative k
		{buf[:0], buf[:0], 1}, // empty block, k=1
	}
	for i, c := range cases {
		if err := chol.SolveBatchInto(c.dst, c.b, c.k); !errors.Is(err, ErrShape) {
			t.Fatalf("case %d: cholesky err = %v, want ErrShape", i, err)
		}
		if err := lu.SolveBatchInto(c.dst, c.b, c.k); !errors.Is(err, ErrShape) {
			t.Fatalf("case %d: lu err = %v, want ErrShape", i, err)
		}
	}
	// k = 0 with empty slices is a valid degenerate block.
	if err := chol.SolveBatchInto(nil, nil, 0); err != nil {
		t.Fatalf("k=0: %v", err)
	}
}

// TestAllocsSolveBatch gates the steady-state batch solves at zero
// allocations per op (picked up by scripts/check_allocs.sh).
func TestAllocsSolveBatch(t *testing.T) {
	skipUnderRace(t)
	r := rng.New(86)
	const n, k = 12, 8
	a := randomSPD(r, n)
	chol, err := FactorizeCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	lu, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n*k)
	for i := range b {
		b[i] = r.NormScaled(0, 1)
	}
	dst := make([]float64, n*k)
	if got := testing.AllocsPerRun(200, func() {
		if err := chol.SolveBatchInto(dst, b, k); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Fatalf("Cholesky.SolveBatchInto allocated %.1f/op, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() {
		if err := lu.SolveBatchInto(dst, b, k); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Fatalf("LU.SolveBatchInto allocated %.1f/op, want 0", got)
	}
}

// TestKernelsMatchSerialReference pins the unrolled kernels against the
// obvious serial loops to within reassociation tolerance, including the
// guarantee that the 4-column kernels replicate the single-column
// kernels bit for bit.
func TestKernelsMatchSerialReference(t *testing.T) {
	r := rng.New(87)
	for _, n := range []int{0, 1, 2, 3, 4, 7, 8, 15, 64, 101} {
		a := make([]float64, n)
		xs := make([][]float64, 4)
		for i := range a {
			a[i] = r.NormScaled(0, 2)
		}
		for c := range xs {
			xs[c] = make([]float64, n)
			for i := range xs[c] {
				xs[c][i] = r.NormScaled(0, 2)
			}
		}
		var serial float64
		for i := 0; i < n; i++ {
			serial += a[i] * xs[0][i]
		}
		got := dotUnrolled(a, xs[0])
		if math.Abs(got-serial) > 1e-12*(1+math.Abs(serial)) {
			t.Fatalf("n=%d: dotUnrolled %v vs serial %v", n, got, serial)
		}
		r0, r1, r2, r3 := dotUnrolled4(a, xs[0], xs[1], xs[2], xs[3])
		for c, rc := range []float64{r0, r1, r2, r3} {
			if want := dotUnrolled(a, xs[c]); rc != want {
				t.Fatalf("n=%d col %d: dotUnrolled4 %v != dotUnrolled %v", n, c, rc, want)
			}
		}
		if n == 0 {
			continue
		}
		// Strided access against a fat backing array.
		stride := n + 3
		d := make([]float64, 2+n*stride)
		for i := range d {
			d[i] = r.NormScaled(0, 2)
		}
		serial = 0
		for i := 0; i < n; i++ {
			serial += d[2+i*stride] * xs[0][i]
		}
		got = strideDot(d, 2, stride, xs[0])
		if math.Abs(got-serial) > 1e-12*(1+math.Abs(serial)) {
			t.Fatalf("n=%d: strideDot %v vs serial %v", n, got, serial)
		}
		s0, s1, s2, s3 := strideDot4(d, 2, stride, xs[0], xs[1], xs[2], xs[3])
		for c, sc := range []float64{s0, s1, s2, s3} {
			if want := strideDot(d, 2, stride, xs[c]); sc != want {
				t.Fatalf("n=%d col %d: strideDot4 %v != strideDot %v", n, c, sc, want)
			}
		}
	}
}

// TestDot4ColsMatchesGeneric pins the dot4cols entry point (the SSE2
// kernel on amd64, the portable kernel elsewhere) against
// dot4colsGeneric and the single-column dotUnrolled, bit for bit, across
// lengths spanning every unroll boundary, offset starts, strides wider
// than the column, and non-finite inputs.
func TestDot4ColsMatchesGeneric(t *testing.T) {
	r := rng.New(88)
	for _, n := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 31, 64, 100, 101} {
		for _, pad := range []int{0, 3} {
			for _, lo := range []int{0, 1, 5} {
				stride := n + lo + pad
				x := make([]float64, 4*stride)
				a := make([]float64, n)
				for i := range a {
					a[i] = r.NormScaled(0, 2)
				}
				for i := range x {
					x[i] = r.NormScaled(0, 2)
				}
				g0, g1, g2, g3 := dot4colsGeneric(a, x, stride, lo)
				k0, k1, k2, k3 := dot4cols(a, x, stride, lo)
				for c, pair := range [][2]float64{{k0, g0}, {k1, g1}, {k2, g2}, {k3, g3}} {
					if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
						t.Fatalf("n=%d lo=%d stride=%d col %d: dot4cols %v != generic %v",
							n, lo, stride, c, pair[0], pair[1])
					}
					want := dotUnrolled(a, x[c*stride+lo:][:n])
					if math.Float64bits(pair[0]) != math.Float64bits(want) {
						t.Fatalf("n=%d lo=%d stride=%d col %d: dot4cols %v != dotUnrolled %v",
							n, lo, stride, c, pair[0], want)
					}
				}
			}
		}
	}
	// Non-finite inputs must poison both paths the same way. NaN payload
	// bits are NOT compared: when two NaNs meet in an add, which payload
	// survives depends on operand order, and the compiler is free to
	// emit either order for the generic kernel (it differs between
	// instrumented and regular builds). Any NaN ends a kriging predict
	// in ErrDegenerate, so payload identity is unobservable anyway.
	a := []float64{1, math.NaN(), math.Inf(1), 2, -3}
	x := make([]float64, 4*len(a))
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	x[2] = math.Inf(-1)
	g0, g1, g2, g3 := dot4colsGeneric(a, x, len(a), 0)
	k0, k1, k2, k3 := dot4cols(a, x, len(a), 0)
	for c, pair := range [][2]float64{{k0, g0}, {k1, g1}, {k2, g2}, {k3, g3}} {
		same := math.Float64bits(pair[0]) == math.Float64bits(pair[1]) ||
			(math.IsNaN(pair[0]) && math.IsNaN(pair[1]))
		if !same {
			t.Fatalf("non-finite col %d: dot4cols %v != generic %v", c, pair[0], pair[1])
		}
	}
}
