package linalg

import (
	"fmt"
	"math"
)

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L·Lᵀ.
type Cholesky struct {
	l *Matrix
	n int
}

// FactorizeCholesky computes the Cholesky factorisation of the symmetric
// positive definite matrix a. Only the lower triangle of a is read.
// It returns ErrSingular when the matrix is not positive definite.
func FactorizeCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: Cholesky of %dx%d", ErrShape, a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				// !(s > 0) rather than s <= 0: a NaN pivot (non-finite
				// input) must be rejected, not passed to Sqrt.
				if !(s > 0) {
					return nil, fmt.Errorf("%w: non-positive diagonal at %d", ErrSingular, i)
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return &Cholesky{l: l, n: n}, nil
}

// Solve solves A·x = b given the factorisation.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	x := make([]float64, c.n)
	if err := c.SolveInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto solves A·x = b into dst, allocation-free. dst may alias b
// (the forward sweep reads b[i] exactly once, before writing dst[i]);
// partial overlap of distinct slices is not supported.
func (c *Cholesky) SolveInto(dst, b []float64) error {
	if len(b) != c.n || len(dst) != c.n {
		return fmt.Errorf("%w: rhs length %d, dst length %d, want %d", ErrShape, len(b), len(dst), c.n)
	}
	n := c.n
	// Forward: L·y = b, y landing in dst.
	for i := 0; i < n; i++ {
		row := c.l.Data[i*n : i*n+i+1]
		dst[i] = (b[i] - dotUnrolled(row[:i], dst)) / row[i]
	}
	// Backward: Lᵀ·x = y, in place.
	for i := n - 1; i >= 0; i-- {
		s := strideDot(c.l.Data, (i+1)*n+i, n, dst[i+1:n])
		dst[i] = (dst[i] - s) / c.l.Data[i*n+i]
	}
	return nil
}

// Size returns the dimension of the factored matrix.
func (c *Cholesky) Size() int { return c.n }

// cholAppendTol is the health threshold of AppendRow: the squared new
// diagonal pivot must retain at least this fraction of the magnitudes it
// was computed from, or the update is rejected as numerically unsafe
// (catastrophic cancellation would poison every later solve). Callers
// fall back to a full refactorisation on rejection.
const cholAppendTol = 1e-8

// AppendRow extends the factorisation of the n×n matrix A to the
// bordered (n+1)×(n+1) matrix
//
//	A' = ⎡A     row⎤
//	     ⎣rowᵀ diag⎦
//
// in O(n²): one triangular solve for the new off-diagonal row of L plus
// a square root for the new diagonal. The receiver is not modified; the
// returned factor shares no state with it, so cached factors can keep
// serving concurrent solves while extensions are built.
//
// It returns ErrSingular when A' is not (safely) positive definite —
// the new diagonal pivot is non-positive or has lost nearly all its
// precision to cancellation — in which case the caller should
// refactorise from scratch.
func (c *Cholesky) AppendRow(row []float64, diag float64) (*Cholesky, error) {
	if len(row) != c.n {
		return nil, fmt.Errorf("%w: appended row length %d, want %d", ErrShape, len(row), c.n)
	}
	n := c.n
	m := n + 1
	l := NewMatrix(m, m)
	for i := 0; i < n; i++ {
		copy(l.Data[i*m:i*m+i+1], c.l.Data[i*n:i*n+i+1])
	}
	// New off-diagonal row v: L·v = row (forward substitution), read from
	// the old factor, written into the new last row.
	last := l.Data[n*m : n*m+m]
	var sq float64
	for i := 0; i < n; i++ {
		ri := c.l.Data[i*n : i*n+i+1]
		s := row[i]
		for k := 0; k < i; k++ {
			s -= ri[k] * last[k]
		}
		v := s / ri[i]
		last[i] = v
		sq += v * v
	}
	// New diagonal: l² = diag - v·v, guarded against cancellation. The
	// guard must fail CLOSED on non-finite pivots: a NaN d2 (duplicate
	// support points pushed through a degenerate anisotropy transform
	// yield NaN distances, hence NaN rows) compares false against every
	// threshold, and the old `d2 <= 0 || d2 < tol·(...)` form let
	// sqrt(NaN) poison the factor while reporting success.
	d2 := diag - sq
	if !(d2 > 0) || math.IsInf(d2, 0) || d2 < cholAppendTol*(math.Abs(diag)+sq) {
		return nil, fmt.Errorf("%w: appended diagonal pivot %g below health threshold", ErrSingular, d2)
	}
	last[n] = math.Sqrt(d2)
	return &Cholesky{l: l, n: m}, nil
}

// DropRow removes row/column i from the factored matrix, returning the
// factorisation of the (n-1)×(n-1) principal submatrix in O(n²): the
// rows below i keep their leading columns, and the trailing block is
// repaired by a Givens-style rank-1 update with the deleted column. The
// receiver is not modified. Dropping from a positive definite matrix
// always yields a positive definite submatrix, so — unlike AppendRow —
// the update cannot fail for healthy inputs.
func (c *Cholesky) DropRow(i int) (*Cholesky, error) {
	n := c.n
	if i < 0 || i >= n {
		return nil, fmt.Errorf("%w: drop row %d of %d", ErrShape, i, n)
	}
	m := n - 1
	l := NewMatrix(m, m)
	for r := 0; r < i; r++ {
		copy(l.Data[r*m:r*m+r+1], c.l.Data[r*n:r*n+r+1])
	}
	// Rows below the deleted one shift up; their column i entries form
	// the update vector u with S·Sᵀ + u·uᵀ the trailing block of A'.
	u := make([]float64, n-1-i)
	for r := i + 1; r < n; r++ {
		nr := r - 1
		copy(l.Data[nr*m:nr*m+i], c.l.Data[r*n:r*n+i])
		u[r-i-1] = c.l.Data[r*n+i]
		for j := i + 1; j <= r; j++ {
			l.Data[nr*m+j-1] = c.l.Data[r*n+j]
		}
	}
	// Rank-1 update of the trailing block with u (the classical positive
	// cholupdate sweep — unconditionally stable).
	t := len(u)
	for k := 0; k < t; k++ {
		dk := l.Data[(i+k)*m+i+k]
		r := math.Hypot(dk, u[k])
		if r == 0 {
			return nil, fmt.Errorf("%w: zero diagonal while restoring dropped row", ErrSingular)
		}
		cth, sth := r/dk, u[k]/dk
		l.Data[(i+k)*m+i+k] = r
		for j := k + 1; j < t; j++ {
			v := (l.Data[(i+j)*m+i+k] + sth*u[j]) / cth
			u[j] = cth*u[j] - sth*v
			l.Data[(i+j)*m+i+k] = v
		}
	}
	return &Cholesky{l: l, n: m}, nil
}

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Matrix { return c.l.Clone() }

// Dot returns the inner product of two equal-length vectors. It uses
// the same two-chain accumulation as the triangular-solve kernels, so
// callers composing predictions from Dot calls get results bit-identical
// to the blocked batch paths built on the same kernels.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	return dotUnrolled(a, b)
}

// Dot4 returns a·x0, a·x1, a·x2, a·x3 in one pass through the
// shared-coefficient 4-wide kernel. Each result is bit-identical to the
// corresponding Dot(a, xi) (and, multiplication being commutative, to
// Dot(xi, a)) — the batch prediction output loops use it to compute four
// queries' weight·value dots per sweep over the shared value vector.
func Dot4(a, x0, x1, x2, x3 []float64) (r0, r1, r2, r3 float64) {
	if len(a) != len(x0) || len(a) != len(x1) || len(a) != len(x2) || len(a) != len(x3) {
		panic("linalg: Dot4 length mismatch")
	}
	return dotUnrolled4(a, x0, x1, x2, x3)
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormInf returns the max-abs norm of v.
func NormInf(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// AXPY computes y := a·x + y in place and returns y.
func AXPY(a float64, x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	axpyUnrolled(a, x, y)
	return y
}
