package linalg

import (
	"fmt"
	"math"
)

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L·Lᵀ.
type Cholesky struct {
	l *Matrix
	n int
}

// FactorizeCholesky computes the Cholesky factorisation of the symmetric
// positive definite matrix a. Only the lower triangle of a is read.
// It returns ErrSingular when the matrix is not positive definite.
func FactorizeCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: Cholesky of %dx%d", ErrShape, a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("%w: non-positive diagonal at %d", ErrSingular, i)
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return &Cholesky{l: l, n: n}, nil
}

// Solve solves A·x = b given the factorisation.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	if len(b) != c.n {
		return nil, fmt.Errorf("%w: rhs length %d, want %d", ErrShape, len(b), c.n)
	}
	n := c.n
	// Forward: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= c.l.At(i, k) * y[k]
		}
		y[i] = s / c.l.At(i, i)
	}
	// Backward: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.l.At(k, i) * x[k]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x, nil
}

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Matrix { return c.l.Clone() }

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormInf returns the max-abs norm of v.
func NormInf(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// AXPY computes y := a·x + y in place and returns y.
func AXPY(a float64, x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
	return y
}
