package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestLUSolveKnown(t *testing.T) {
	a, _ := FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := Solve(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-10) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestLUSolveResidual(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(10)
		a := randomMatrix(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormScaled(0, 1)
		}
		x, err := Solve(a, b)
		if err != nil {
			// Random Gaussian matrices are almost never singular, but a
			// singular draw is a legal outcome, not a test failure.
			continue
		}
		ax, err := a.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range b {
			if !almostEqual(ax[i], b[i], 1e-7*(1+math.Abs(b[i]))) {
				t.Fatalf("trial %d: residual %v at %d", trial, ax[i]-b[i], i)
			}
		}
	}
}

func TestLUSingular(t *testing.T) {
	a, _ := FromRows([][]float64{
		{1, 2},
		{2, 4},
	})
	if _, err := Factorize(a); !errors.Is(err, ErrSingular) {
		t.Errorf("singular matrix: err = %v, want ErrSingular", err)
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := Factorize(NewMatrix(2, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("non-square: err = %v, want ErrShape", err)
	}
}

func TestLUSolveWrongRHS(t *testing.T) {
	f, err := Factorize(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Errorf("short rhs: err = %v, want ErrShape", err)
	}
}

func TestDetKnown(t *testing.T) {
	a, _ := FromRows([][]float64{
		{3, 8},
		{4, 6},
	})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); !almostEqual(d, -14, 1e-10) {
		t.Errorf("det = %v, want -14", d)
	}
}

func TestDetIdentity(t *testing.T) {
	f, err := Factorize(Identity(5))
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); !almostEqual(d, 1, 1e-12) {
		t.Errorf("det(I) = %v", d)
	}
}

func TestDetPermutationSign(t *testing.T) {
	// A row swap of the identity has determinant -1; this exercises the
	// pivot sign tracking.
	a, _ := FromRows([][]float64{
		{0, 1},
		{1, 0},
	})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); !almostEqual(d, -1, 1e-12) {
		t.Errorf("det(swap) = %v, want -1", d)
	}
}

func TestInverseTimesOriginal(t *testing.T) {
	r := rng.New(21)
	a := randomMatrix(r, 5)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := a.Mul(inv)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEqual(prod.At(i, j), want, 1e-8) {
				t.Fatalf("A·A⁻¹[%d][%d] = %v", i, j, prod.At(i, j))
			}
		}
	}
}

func TestMinPivotPositive(t *testing.T) {
	f, err := Factorize(Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	if f.MinPivot() != 1 {
		t.Errorf("MinPivot(I) = %v", f.MinPivot())
	}
}

func TestPropertySolveResidualSmall(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(8)
		a := randomMatrix(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormScaled(0, 10)
		}
		x, err := Solve(a, b)
		if err != nil {
			return true // singular draw is acceptable
		}
		ax, err := a.MulVec(x)
		if err != nil {
			return false
		}
		// Residual relative to the conditioning proxy.
		scale := a.MaxAbs()*NormInf(x) + NormInf(b) + 1
		return NormInf(AXPY(-1, b, ax)) <= 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDetProductRule(t *testing.T) {
	// det(A·B) == det(A)·det(B) within tolerance.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(5)
		a := randomMatrix(r, n)
		b := randomMatrix(r, n)
		fa, err1 := Factorize(a)
		fb, err2 := Factorize(b)
		ab, err3 := a.Mul(b)
		if err1 != nil || err2 != nil || err3 != nil {
			return true
		}
		fab, err := Factorize(ab)
		if err != nil {
			return true
		}
		lhs, rhs := fab.Det(), fa.Det()*fb.Det()
		return almostEqual(lhs, rhs, 1e-6*(1+math.Abs(rhs)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
