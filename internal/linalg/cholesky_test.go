package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// randomSPD builds a random symmetric positive definite matrix A = MᵀM + εI.
func randomSPD(r *rng.Stream, n int) *Matrix {
	m := randomMatrix(r, n)
	mt := m.T()
	spd, err := mt.Mul(m)
	if err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		spd.Set(i, i, spd.At(i, i)+0.1)
	}
	return spd
}

func TestCholeskyKnown(t *testing.T) {
	a, _ := FromRows([][]float64{
		{4, 12, -16},
		{12, 37, -43},
		{-16, -43, 98},
	})
	c, err := FactorizeCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	l := c.L()
	want := [][]float64{
		{2, 0, 0},
		{6, 1, 0},
		{-8, 5, 3},
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !almostEqual(l.At(i, j), want[i][j], 1e-10) {
				t.Errorf("L[%d][%d] = %v, want %v", i, j, l.At(i, j), want[i][j])
			}
		}
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	r := rng.New(5)
	a := randomSPD(r, 6)
	c, err := FactorizeCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	l := c.L()
	llt, err := l.Mul(l.T())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if !almostEqual(llt.Data[i], a.Data[i], 1e-8*(1+math.Abs(a.Data[i]))) {
			t.Fatal("L·Lᵀ does not reconstruct A")
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	r := rng.New(6)
	a := randomSPD(r, 5)
	b := []float64{1, -2, 3, -4, 5}
	c, err := FactorizeCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := c.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	ax, err := a.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if !almostEqual(ax[i], b[i], 1e-7) {
			t.Fatalf("residual %v at %d", ax[i]-b[i], i)
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a, _ := FromRows([][]float64{
		{1, 2},
		{2, 1}, // eigenvalues 3 and -1
	})
	if _, err := FactorizeCholesky(a); !errors.Is(err, ErrSingular) {
		t.Errorf("indefinite matrix: err = %v, want ErrSingular", err)
	}
}

func TestCholeskyNonSquare(t *testing.T) {
	if _, err := FactorizeCholesky(NewMatrix(2, 3)); !errors.Is(err, ErrShape) {
		t.Error("non-square accepted")
	}
}

func TestCholeskySolveWrongRHS(t *testing.T) {
	c, err := FactorizeCholesky(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve([]float64{1}); !errors.Is(err, ErrShape) {
		t.Error("short rhs accepted")
	}
}

func TestDotNorms(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	if !almostEqual(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Error("Norm2 wrong")
	}
	if NormInf([]float64{-7, 3}) != 7 {
		t.Error("NormInf wrong")
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot length mismatch did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAXPY(t *testing.T) {
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("AXPY = %v", y)
	}
}

func TestPropertyCholeskyMatchesLU(t *testing.T) {
	// Both factorisations must solve SPD systems identically.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(6)
		a := randomSPD(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormScaled(0, 3)
		}
		c, err := FactorizeCholesky(a)
		if err != nil {
			return false // SPD construction guarantees success
		}
		x1, err := c.Solve(b)
		if err != nil {
			return false
		}
		x2, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range x1 {
			if !almostEqual(x1[i], x2[i], 1e-6*(1+math.Abs(x2[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
