package variogram

import "math"

// GammaInto evaluates γ over a slice of distances in one pass:
// dst[i] = m.Gamma(h[i]). For the five concrete model families it
// devirtualises the per-element interface dispatch into a single
// type-switched loop — the shape the batch kriging RHS build wants,
// where one model is applied across an entire support × query block.
// Each specialised loop performs the SAME per-element arithmetic as the
// corresponding Gamma method, so the results are bit-identical to an
// element-wise Gamma loop; unknown Model implementations fall back to
// exactly that loop.
//
// dst and h must have equal length; dst may alias h.
func GammaInto(m Model, dst, h []float64) {
	if len(dst) != len(h) {
		panic("variogram: GammaInto length mismatch")
	}
	switch v := m.(type) {
	case *PowerModel:
		for i, d := range h {
			if d <= 0 {
				dst[i] = v.Nugget
				continue
			}
			dst[i] = v.Nugget + v.Alpha*math.Pow(d, v.Beta)
		}
	case *LinearModel:
		for i, d := range h {
			if d <= 0 {
				dst[i] = v.Nugget
				continue
			}
			dst[i] = v.Nugget + v.Slope*d
		}
	case *SphericalModel:
		for i, d := range h {
			if d <= 0 {
				dst[i] = v.Nugget
				continue
			}
			if d >= v.Range {
				dst[i] = v.Nugget + v.Sill
				continue
			}
			r := d / v.Range
			dst[i] = v.Nugget + v.Sill*(1.5*r-0.5*r*r*r)
		}
	case *ExponentialModel:
		for i, d := range h {
			if d <= 0 {
				dst[i] = v.Nugget
				continue
			}
			dst[i] = v.Nugget + v.Sill*(1-math.Exp(-d/v.Range))
		}
	case *GaussianModel:
		for i, d := range h {
			if d <= 0 {
				dst[i] = v.Nugget
				continue
			}
			r := d / v.Range
			dst[i] = v.Nugget + v.Sill*(1-math.Exp(-r*r))
		}
	default:
		for i, d := range h {
			dst[i] = m.Gamma(d)
		}
	}
}
