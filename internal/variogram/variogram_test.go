package variogram

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func l1(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

func TestCloudFromSamples(t *testing.T) {
	xs := [][]float64{{0}, {1}, {3}}
	ys := []float64{10, 12, 20}
	pairs := CloudFromSamples(xs, ys, l1)
	if len(pairs) != 3 {
		t.Fatalf("cloud has %d pairs, want 3", len(pairs))
	}
	// Pair (0,1): dist 1, sq 4. Pair (0,2): dist 3, sq 100. Pair (1,2): dist 2, sq 64.
	want := map[float64]float64{1: 4, 3: 100, 2: 64}
	for _, p := range pairs {
		if want[p.Dist] != p.Sq {
			t.Errorf("pair at d=%v has sq=%v, want %v", p.Dist, p.Sq, want[p.Dist])
		}
	}
}

func TestCloudPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched inputs did not panic")
		}
	}()
	CloudFromSamples([][]float64{{0}}, []float64{1, 2}, l1)
}

func TestEmpiricalExactEq4(t *testing.T) {
	// Hand-checkable Eq. 4: two pairs at distance 1 with squared diffs
	// 4 and 16 -> gamma(1) = (4+16)/(2*2) = 5.
	pairs := []Pair{{Dist: 1, Sq: 4}, {Dist: 1, Sq: 16}, {Dist: 2, Sq: 8}}
	bins := EmpiricalExact(pairs)
	if len(bins) != 2 {
		t.Fatalf("got %d bins, want 2", len(bins))
	}
	if bins[0].Dist != 1 || !almostEqual(bins[0].Gamma, 5, 1e-12) || bins[0].Count != 2 {
		t.Errorf("bin 0 = %+v", bins[0])
	}
	if bins[1].Dist != 2 || !almostEqual(bins[1].Gamma, 4, 1e-12) || bins[1].Count != 1 {
		t.Errorf("bin 1 = %+v", bins[1])
	}
}

func TestEmpiricalBinned(t *testing.T) {
	pairs := []Pair{
		{Dist: 0, Sq: 2},   // nugget bin
		{Dist: 0.6, Sq: 4}, // bin 1 of 2 over (0, 2]
		{Dist: 1.7, Sq: 8}, // bin 2
		{Dist: 5, Sq: 100}, // beyond maxDist: dropped
	}
	bins := Empirical(pairs, 2, 2)
	if len(bins) != 3 {
		t.Fatalf("got %d bins: %+v", len(bins), bins)
	}
	if bins[0].Dist != 0 || !almostEqual(bins[0].Gamma, 1, 1e-12) {
		t.Errorf("nugget bin = %+v", bins[0])
	}
	if !almostEqual(bins[1].Gamma, 2, 1e-12) || !almostEqual(bins[2].Gamma, 4, 1e-12) {
		t.Errorf("bins = %+v", bins)
	}
}

func TestEmpiricalEdgeCases(t *testing.T) {
	if Empirical(nil, 4, 10) != nil {
		t.Error("empty cloud should give nil bins")
	}
	if Empirical([]Pair{{Dist: 1, Sq: 1}}, 0, 10) != nil {
		t.Error("zero bins should give nil")
	}
}

func TestMaxDist(t *testing.T) {
	if MaxDist([]Pair{{Dist: 1}, {Dist: 7}, {Dist: 3}}) != 7 {
		t.Error("MaxDist wrong")
	}
	if MaxDist(nil) != 0 {
		t.Error("MaxDist of empty should be 0")
	}
}

func TestFitPowerRecoversAlpha(t *testing.T) {
	// Synthesise a perfect power-law field gamma(h) = 2.5 h^1.5 and
	// check the NR least-squares recovers alpha.
	var pairs []Pair
	for _, h := range []float64{1, 2, 3, 4, 5} {
		gamma := 2.5 * math.Pow(h, 1.5)
		pairs = append(pairs, Pair{Dist: h, Sq: 2 * gamma})
	}
	m, err := FitPower(pairs, 1.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m.Alpha, 2.5, 1e-9) {
		t.Errorf("alpha = %v, want 2.5", m.Alpha)
	}
	if !almostEqual(m.Gamma(2), 2.5*math.Pow(2, 1.5), 1e-9) {
		t.Errorf("Gamma(2) = %v", m.Gamma(2))
	}
}

func TestFitPowerInvalidBetaFallsBack(t *testing.T) {
	pairs := []Pair{{Dist: 1, Sq: 2}, {Dist: 2, Sq: 4}}
	m, err := FitPower(pairs, 7, 0) // invalid beta -> DefaultBeta
	if err != nil {
		t.Fatal(err)
	}
	if m.Beta != DefaultBeta {
		t.Errorf("beta = %v, want %v", m.Beta, DefaultBeta)
	}
}

func TestFitPowerInsufficient(t *testing.T) {
	if _, err := FitPower(nil, 1.5, 0); !errors.Is(err, ErrInsufficientData) {
		t.Error("empty cloud fitted")
	}
	// Only zero-distance pairs carry no slope information.
	if _, err := FitPower([]Pair{{Dist: 0, Sq: 4}}, 1.5, 0); !errors.Is(err, ErrInsufficientData) {
		t.Error("zero-distance-only cloud fitted")
	}
}

func TestFitLinearRecoversSlope(t *testing.T) {
	var pairs []Pair
	for _, h := range []float64{1, 2, 4, 8} {
		pairs = append(pairs, Pair{Dist: h, Sq: 2 * 3 * h})
	}
	m, err := FitLinear(pairs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m.Slope, 3, 1e-9) {
		t.Errorf("slope = %v, want 3", m.Slope)
	}
}

func TestFitWithNugget(t *testing.T) {
	var pairs []Pair
	for _, h := range []float64{1, 2, 3} {
		gamma := 1.0 + 2*h // nugget 1, slope 2
		pairs = append(pairs, Pair{Dist: h, Sq: 2 * gamma})
	}
	m, err := FitLinear(pairs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m.Slope, 2, 1e-9) {
		t.Errorf("slope with nugget = %v, want 2", m.Slope)
	}
	if !almostEqual(m.Gamma(0), 1, 1e-12) {
		t.Errorf("Gamma(0) = %v, want nugget 1", m.Gamma(0))
	}
}

func TestBoundedModels(t *testing.T) {
	sph := &SphericalModel{Sill: 4, Range: 10}
	if !almostEqual(sph.Gamma(10), 4, 1e-12) || !almostEqual(sph.Gamma(25), 4, 1e-12) {
		t.Error("spherical plateau wrong")
	}
	if sph.Gamma(5) >= 4 || sph.Gamma(5) <= 0 {
		t.Error("spherical mid-range out of (0, sill)")
	}
	exp := &ExponentialModel{Sill: 4, Range: 2}
	if exp.Gamma(1e9) < 3.99 {
		t.Error("exponential does not approach sill")
	}
	gau := &GaussianModel{Sill: 4, Range: 2}
	if gau.Gamma(1e9) < 3.99 {
		t.Error("gaussian does not approach sill")
	}
}

func TestFitBoundedFamilies(t *testing.T) {
	// A spherical-looking cloud: gamma rises then plateaus.
	var pairs []Pair
	truth := &SphericalModel{Sill: 9, Range: 6}
	for _, h := range []float64{1, 2, 3, 4, 5, 6, 7, 8, 9} {
		pairs = append(pairs, Pair{Dist: h, Sq: 2 * truth.Gamma(h)})
	}
	for _, kind := range []Kind{Spherical, Exponential, Gaussian} {
		m, err := Fit(kind, pairs, 0)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		// The sill estimate should land in the right decade.
		if m.Gamma(100) < 3 || m.Gamma(100) > 27 {
			t.Errorf("%s: Gamma(inf) = %v, want ~9", kind, m.Gamma(100))
		}
	}
}

func TestFitInsufficientBounded(t *testing.T) {
	for _, kind := range []Kind{Spherical, Exponential, Gaussian} {
		if _, err := Fit(kind, nil, 0); !errors.Is(err, ErrInsufficientData) {
			t.Errorf("%s fitted empty cloud", kind)
		}
	}
}

func TestKindParseRoundTrip(t *testing.T) {
	for _, k := range []Kind{Power, Linear, Spherical, Exponential, Gaussian} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("cubic"); err == nil {
		t.Error("unknown kind parsed")
	}
}

func TestModelNamesAndParams(t *testing.T) {
	models := []Model{
		&PowerModel{Alpha: 1, Beta: 1.5},
		&LinearModel{Slope: 1},
		&SphericalModel{Sill: 1, Range: 1},
		&ExponentialModel{Sill: 1, Range: 1},
		&GaussianModel{Sill: 1, Range: 1},
	}
	for _, m := range models {
		if m.Name() == "" || len(m.Params()) == 0 {
			t.Errorf("model %T missing name or params", m)
		}
	}
}

func TestPropertyModelsNonDecreasing(t *testing.T) {
	// Every fitted model must be non-decreasing in h (required for a
	// well-posed kriging system on our lattices).
	f := func(seed uint64) bool {
		r := rng.New(seed)
		var pairs []Pair
		for i := 0; i < 10; i++ {
			h := 1 + r.Float64()*9
			pairs = append(pairs, Pair{Dist: h, Sq: r.Float64() * 10})
		}
		for _, kind := range []Kind{Power, Linear, Spherical, Exponential, Gaussian} {
			m, err := Fit(kind, pairs, 0)
			if err != nil {
				continue
			}
			prev := m.Gamma(0)
			for h := 0.5; h < 20; h += 0.5 {
				g := m.Gamma(h)
				if g < prev-1e-12 {
					return false
				}
				prev = g
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyFitPowerNonNegativeAlpha(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		var pairs []Pair
		for i := 0; i < 8; i++ {
			pairs = append(pairs, Pair{Dist: r.Float64() * 5, Sq: r.Float64() * 4})
		}
		m, err := FitPower(pairs, 1.5, 0)
		if err != nil {
			return true
		}
		return m.Alpha >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
