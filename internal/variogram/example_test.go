package variogram_test

import (
	"fmt"
	"math"

	"repro/internal/variogram"
)

// ExampleEmpiricalExact computes Eq. 4 of the paper on a tiny sample set.
func ExampleEmpiricalExact() {
	l1 := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			s += math.Abs(a[i] - b[i])
		}
		return s
	}
	xs := [][]float64{{0}, {1}, {2}}
	ys := []float64{0, 2, 4}
	bins := variogram.EmpiricalExact(variogram.CloudFromSamples(xs, ys, l1))
	for _, b := range bins {
		fmt.Printf("gamma(%.0f) = %.1f over %d pairs\n", b.Dist, b.Gamma, b.Count)
	}
	// Output:
	// gamma(1) = 2.0 over 2 pairs
	// gamma(2) = 8.0 over 1 pairs
}

// ExampleFitPower fits the Numerical-Recipes power model the paper's
// kriging is built on.
func ExampleFitPower() {
	pairs := []variogram.Pair{
		{Dist: 1, Sq: 2 * 3.0}, // gamma(1) = 3
		{Dist: 2, Sq: 2 * 3.0 * math.Pow(2, 1.5)},
	}
	m, err := variogram.FitPower(pairs, 1.5, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("alpha=%.1f gamma(4)=%.1f\n", m.Alpha, m.Gamma(4))
	// Output:
	// alpha=3.0 gamma(4)=24.0
}
