package variogram

import (
	"math"
)

// DefaultBeta is the fixed power-law exponent of the Numerical Recipes
// powvargram model; the paper's kriging follows that implementation.
const DefaultBeta = 1.5

// FitPower fits the power-law model γ(h) = α·h^β with fixed β to a
// variogram cloud by the Numerical Recipes least-squares rule:
// α = Σ γᵢ·hᵢ^β / Σ hᵢ^(2β) over all pairs, where γᵢ = Sqᵢ/2.
// A non-negative nugget can be supplied by the caller (0 is the NR
// default). Zero-distance pairs carry no slope information and are
// skipped.
func FitPower(pairs []Pair, beta, nugget float64) (*PowerModel, error) {
	if beta <= 0 || beta >= 2 {
		beta = DefaultBeta
	}
	var num, den float64
	n := 0
	for _, p := range pairs {
		if p.Dist <= 0 || math.IsNaN(p.Dist) || math.IsNaN(p.Sq) {
			continue
		}
		hb := math.Pow(p.Dist, beta)
		gamma := p.Sq / 2
		if gamma > nugget {
			gamma -= nugget
		} else {
			gamma = 0
		}
		num += gamma * hb
		den += hb * hb
		n++
	}
	if n == 0 || den == 0 {
		return nil, ErrInsufficientData
	}
	alpha := num / den
	if alpha < 0 {
		alpha = 0
	}
	return &PowerModel{Alpha: alpha, Beta: beta, Nugget: nugget}, nil
}

// FitLinear fits γ(h) = slope·h to a cloud by least squares through the
// origin (after removing the nugget).
func FitLinear(pairs []Pair, nugget float64) (*LinearModel, error) {
	var num, den float64
	n := 0
	for _, p := range pairs {
		if p.Dist <= 0 || math.IsNaN(p.Dist) || math.IsNaN(p.Sq) {
			continue
		}
		gamma := p.Sq / 2
		if gamma > nugget {
			gamma -= nugget
		} else {
			gamma = 0
		}
		num += gamma * p.Dist
		den += p.Dist * p.Dist
		n++
	}
	if n == 0 || den == 0 {
		return nil, ErrInsufficientData
	}
	slope := num / den
	if slope < 0 {
		slope = 0
	}
	return &LinearModel{Slope: slope, Nugget: nugget}, nil
}

// sillAndRange estimates a sill and range from binned data: the sill as
// the mean gamma of the top-distance third of bins, the range as the
// first distance at which gamma reaches 95% of that sill.
func sillAndRange(bins []Bin) (sill, rng float64, ok bool) {
	if len(bins) == 0 {
		return 0, 0, false
	}
	start := 2 * len(bins) / 3
	var s float64
	n := 0
	for _, b := range bins[start:] {
		s += b.Gamma
		n++
	}
	if n == 0 {
		return 0, 0, false
	}
	sill = s / float64(n)
	if sill <= 0 {
		// A flat-zero field; give a tiny positive sill so that the
		// kriging system stays non-degenerate.
		sill = 1e-300
	}
	rng = bins[len(bins)-1].Dist
	for _, b := range bins {
		if b.Gamma >= 0.95*sill && b.Dist > 0 {
			rng = b.Dist
			break
		}
	}
	if rng <= 0 {
		rng = 1
	}
	return sill, rng, true
}

// FitSpherical fits a spherical model to a cloud via binned moments.
func FitSpherical(pairs []Pair, nugget float64) (*SphericalModel, error) {
	bins := EmpiricalExact(pairs)
	sill, rng, ok := sillAndRange(bins)
	if !ok {
		return nil, ErrInsufficientData
	}
	return &SphericalModel{Sill: sill, Range: rng, Nugget: nugget}, nil
}

// FitExponential fits an exponential model to a cloud via binned moments.
// The effective range of the exponential model is ~3·Range, so the
// estimated plateau distance is divided by 3.
func FitExponential(pairs []Pair, nugget float64) (*ExponentialModel, error) {
	bins := EmpiricalExact(pairs)
	sill, rng, ok := sillAndRange(bins)
	if !ok {
		return nil, ErrInsufficientData
	}
	return &ExponentialModel{Sill: sill, Range: rng / 3, Nugget: nugget}, nil
}

// FitGaussian fits a Gaussian model to a cloud via binned moments. The
// effective range of the Gaussian model is ~√3·Range.
func FitGaussian(pairs []Pair, nugget float64) (*GaussianModel, error) {
	bins := EmpiricalExact(pairs)
	sill, rng, ok := sillAndRange(bins)
	if !ok {
		return nil, ErrInsufficientData
	}
	return &GaussianModel{Sill: sill, Range: rng / math.Sqrt(3), Nugget: nugget}, nil
}

// Fit dispatches to the fitting routine for the requested family.
func Fit(kind Kind, pairs []Pair, nugget float64) (Model, error) {
	switch kind {
	case Power:
		return FitPower(pairs, DefaultBeta, nugget)
	case Linear:
		return FitLinear(pairs, nugget)
	case Spherical:
		return FitSpherical(pairs, nugget)
	case Exponential:
		return FitExponential(pairs, nugget)
	case Gaussian:
		return FitGaussian(pairs, nugget)
	default:
		return nil, ErrInsufficientData
	}
}

// FitSamples is a convenience that builds the cloud from samples and fits
// the requested family in one call.
func FitSamples(kind Kind, xs [][]float64, ys []float64, dist func(a, b []float64) float64, nugget float64) (Model, error) {
	return Fit(kind, CloudFromSamples(xs, ys, dist), nugget)
}
