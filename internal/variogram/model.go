// Package variogram implements the semivariogram machinery of the paper's
// Section III-A: the empirical (experimental) semivariogram of Eq. 4 and
// the parametric models it is identified with, including the power-law
// model of the Numerical Recipes kriging implementation the paper cites
// as its reference ([20]).
package variogram

import (
	"errors"
	"fmt"
	"math"
)

// ErrInsufficientData is returned by fitting routines that received too
// few (distance, gamma) observations to identify a model.
var ErrInsufficientData = errors.New("variogram: insufficient data to fit model")

// Model is a fitted semivariogram: Gamma(h) returns the semivariance at
// separation distance h >= 0. Models must satisfy Gamma(0) == Nugget()
// and be non-decreasing for the kriging system to stay well posed on the
// configuration lattices used here.
type Model interface {
	// Gamma evaluates the semivariogram at distance h.
	Gamma(h float64) float64
	// Name returns a short identifier for reports.
	Name() string
	// Params returns the fitted parameters for diagnostics.
	Params() []float64
}

// PowerModel is the Numerical Recipes "powvargram" model
// γ(h) = α·h^β (+ nugget), with β fixed in (0, 2). With β = 1.5 and α
// fitted by least squares it is the default model of this reproduction,
// matching the implementation the paper built on.
type PowerModel struct {
	Alpha  float64
	Beta   float64
	Nugget float64
}

// Gamma implements Model.
func (m *PowerModel) Gamma(h float64) float64 {
	if h <= 0 {
		return m.Nugget
	}
	return m.Nugget + m.Alpha*math.Pow(h, m.Beta)
}

// Name implements Model.
func (m *PowerModel) Name() string { return "power" }

// Params implements Model.
func (m *PowerModel) Params() []float64 { return []float64{m.Alpha, m.Beta, m.Nugget} }

// String renders the model.
func (m *PowerModel) String() string {
	return fmt.Sprintf("power(alpha=%.4g, beta=%.3g, nugget=%.3g)", m.Alpha, m.Beta, m.Nugget)
}

// LinearModel is γ(h) = slope·h (+ nugget).
type LinearModel struct {
	Slope  float64
	Nugget float64
}

// Gamma implements Model.
func (m *LinearModel) Gamma(h float64) float64 {
	if h <= 0 {
		return m.Nugget
	}
	return m.Nugget + m.Slope*h
}

// Name implements Model.
func (m *LinearModel) Name() string { return "linear" }

// Params implements Model.
func (m *LinearModel) Params() []float64 { return []float64{m.Slope, m.Nugget} }

// SphericalModel is the classical bounded model: γ rises as
// sill·(1.5 h/r - 0.5 (h/r)³) up to range r, then stays at the sill.
type SphericalModel struct {
	Sill   float64 // plateau value (excluding nugget)
	Range  float64 // distance at which the plateau is reached
	Nugget float64
}

// Gamma implements Model.
func (m *SphericalModel) Gamma(h float64) float64 {
	if h <= 0 {
		return m.Nugget
	}
	if h >= m.Range {
		return m.Nugget + m.Sill
	}
	r := h / m.Range
	return m.Nugget + m.Sill*(1.5*r-0.5*r*r*r)
}

// Name implements Model.
func (m *SphericalModel) Name() string { return "spherical" }

// Params implements Model.
func (m *SphericalModel) Params() []float64 { return []float64{m.Sill, m.Range, m.Nugget} }

// ExponentialModel is γ(h) = sill·(1 - exp(-h/range)) (+ nugget).
type ExponentialModel struct {
	Sill   float64
	Range  float64
	Nugget float64
}

// Gamma implements Model.
func (m *ExponentialModel) Gamma(h float64) float64 {
	if h <= 0 {
		return m.Nugget
	}
	return m.Nugget + m.Sill*(1-math.Exp(-h/m.Range))
}

// Name implements Model.
func (m *ExponentialModel) Name() string { return "exponential" }

// Params implements Model.
func (m *ExponentialModel) Params() []float64 { return []float64{m.Sill, m.Range, m.Nugget} }

// GaussianModel is γ(h) = sill·(1 - exp(-(h/range)²)) (+ nugget).
type GaussianModel struct {
	Sill   float64
	Range  float64
	Nugget float64
}

// Gamma implements Model.
func (m *GaussianModel) Gamma(h float64) float64 {
	if h <= 0 {
		return m.Nugget
	}
	r := h / m.Range
	return m.Nugget + m.Sill*(1-math.Exp(-r*r))
}

// Name implements Model.
func (m *GaussianModel) Name() string { return "gaussian" }

// Params implements Model.
func (m *GaussianModel) Params() []float64 { return []float64{m.Sill, m.Range, m.Nugget} }

// Kind names a parametric family for selection in configuration and
// ablation benches.
type Kind int

// Supported families.
const (
	Power Kind = iota
	Linear
	Spherical
	Exponential
	Gaussian
)

// String returns the family name.
func (k Kind) String() string {
	switch k {
	case Power:
		return "power"
	case Linear:
		return "linear"
	case Spherical:
		return "spherical"
	case Exponential:
		return "exponential"
	case Gaussian:
		return "gaussian"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a family name to its Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "power":
		return Power, nil
	case "linear":
		return Linear, nil
	case "spherical":
		return Spherical, nil
	case "exponential":
		return Exponential, nil
	case "gaussian":
		return Gaussian, nil
	default:
		return 0, fmt.Errorf("variogram: unknown model kind %q", s)
	}
}
