package variogram

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// TestGammaIntoMatchesGamma pins the devirtualised batch evaluation to
// the per-element Gamma methods bit for bit, across every concrete
// family, the h <= 0 nugget branch, the spherical plateau branch, and
// the interface fallback.
func TestGammaIntoMatchesGamma(t *testing.T) {
	r := rng.New(17)
	models := []Model{
		&PowerModel{Alpha: 2.5, Beta: 1.5, Nugget: 0.3},
		&LinearModel{Slope: 1.7, Nugget: 0.1},
		&SphericalModel{Sill: 40, Range: 6, Nugget: 0.2},
		&ExponentialModel{Sill: 40, Range: 6, Nugget: 0.1},
		&GaussianModel{Sill: 12, Range: 4, Nugget: 0.05},
		opaqueModel{&SphericalModel{Sill: 3, Range: 2, Nugget: 0}},
	}
	h := make([]float64, 257)
	for i := range h {
		switch i % 8 {
		case 0:
			h[i] = 0
		case 1:
			h[i] = -r.Float64()
		case 2:
			h[i] = 12 * r.Float64() // straddles the spherical range
		default:
			h[i] = 4 * r.Float64()
		}
	}
	dst := make([]float64, len(h))
	for _, m := range models {
		GammaInto(m, dst, h)
		for i, d := range h {
			if want := m.Gamma(d); dst[i] != want {
				t.Fatalf("%s: GammaInto[%d] (h=%v) = %v, want %v", m.Name(), i, d, dst[i], want)
			}
		}
	}
	// In-place evaluation over the distance buffer itself.
	m := &ExponentialModel{Sill: 40, Range: 6, Nugget: 0.1}
	GammaInto(m, dst, h)
	inPlace := append([]float64(nil), h...)
	GammaInto(m, inPlace, inPlace)
	for i := range dst {
		if inPlace[i] != dst[i] {
			t.Fatalf("in-place GammaInto[%d] = %v, want %v", i, inPlace[i], dst[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	GammaInto(m, dst[:3], h)
}

// opaqueModel hides the concrete type so GammaInto exercises the
// interface fallback loop.
type opaqueModel struct{ inner Model }

func (o opaqueModel) Gamma(h float64) float64 { return o.inner.Gamma(h) }
func (o opaqueModel) Name() string            { return "opaque" }
func (o opaqueModel) Params() []float64       { return o.inner.Params() }

// TestAllocsGammaInto keeps the batch evaluation off the heap.
func TestAllocsGammaInto(t *testing.T) {
	h := make([]float64, 128)
	for i := range h {
		h[i] = float64(i) / 16
	}
	dst := make([]float64, len(h))
	var m Model = &SphericalModel{Sill: 40, Range: 6, Nugget: 0.2}
	if got := testing.AllocsPerRun(100, func() { GammaInto(m, dst, h) }); got != 0 {
		t.Fatalf("GammaInto allocated %.1f/op, want 0", got)
	}
	if math.IsNaN(dst[0]) {
		t.Fatal("unexpected NaN")
	}
}
