package variogram

import (
	"math"
	"sort"
)

// Pair is a (distance, semivariance-contribution) observation:
// one couple (j, k) of sampled configurations at separation Dist with
// squared value difference Sq = (λ(e_j) - λ(e_k))².
type Pair struct {
	Dist float64
	Sq   float64
}

// CloudFromSamples builds the full variogram cloud from sample
// coordinates xs and values ys, using dist to measure separation.
// It is O(n²) in the number of samples; the paper's supports are tiny.
func CloudFromSamples(xs [][]float64, ys []float64, dist func(a, b []float64) float64) []Pair {
	n := len(xs)
	if len(ys) != n {
		panic("variogram: coordinate/value count mismatch")
	}
	pairs := make([]Pair, 0, n*(n-1)/2)
	for j := 0; j < n; j++ {
		for k := j + 1; k < n; k++ {
			d := dist(xs[j], xs[k])
			dv := ys[j] - ys[k]
			pairs = append(pairs, Pair{Dist: d, Sq: dv * dv})
		}
	}
	return pairs
}

// Bin is one entry of the empirical semivariogram: the average
// semivariance Gamma over the |N(d)| pairs whose separation falls in
// the bin centred at Dist (Eq. 4 of the paper).
type Bin struct {
	Dist  float64 // representative distance (mean of member distances)
	Gamma float64 // (1 / 2|N(d)|) · Σ (λj - λk)²
	Count int     // |N(d)|
}

// Empirical computes the binned empirical semivariogram from a variogram
// cloud. Distances are grouped into nBins equal-width bins over
// (0, maxDist]; pairs at zero distance contribute to a dedicated first
// bin (they estimate the nugget). Bins with no pairs are omitted.
func Empirical(pairs []Pair, nBins int, maxDist float64) []Bin {
	if nBins <= 0 || maxDist <= 0 || len(pairs) == 0 {
		return nil
	}
	sumSq := make([]float64, nBins+1) // index 0: zero-distance pairs
	sumD := make([]float64, nBins+1)
	count := make([]int, nBins+1)
	width := maxDist / float64(nBins)
	for _, p := range pairs {
		if p.Dist > maxDist || p.Dist < 0 || math.IsNaN(p.Dist) {
			continue
		}
		var idx int
		if p.Dist == 0 {
			idx = 0
		} else {
			idx = 1 + int((p.Dist-1e-12)/width)
			if idx > nBins {
				idx = nBins
			}
		}
		sumSq[idx] += p.Sq
		sumD[idx] += p.Dist
		count[idx]++
	}
	var bins []Bin
	for i := 0; i <= nBins; i++ {
		if count[i] == 0 {
			continue
		}
		bins = append(bins, Bin{
			Dist:  sumD[i] / float64(count[i]),
			Gamma: sumSq[i] / (2 * float64(count[i])),
			Count: count[i],
		})
	}
	return bins
}

// EmpiricalExact computes the empirical semivariogram grouping pairs by
// exact distance value rather than by bins. On the integer configuration
// lattices of the paper (L1 distances are small integers) this is the
// most faithful reading of Eq. 4, where N(d) collects the couples at
// distance exactly d.
func EmpiricalExact(pairs []Pair) []Bin {
	byDist := make(map[float64]*Bin)
	for _, p := range pairs {
		if math.IsNaN(p.Dist) || p.Dist < 0 {
			continue
		}
		b, ok := byDist[p.Dist]
		if !ok {
			b = &Bin{Dist: p.Dist}
			byDist[p.Dist] = b
		}
		b.Gamma += p.Sq
		b.Count++
	}
	bins := make([]Bin, 0, len(byDist))
	for _, b := range byDist {
		b.Gamma /= 2 * float64(b.Count)
		bins = append(bins, *b)
	}
	sort.Slice(bins, func(i, j int) bool { return bins[i].Dist < bins[j].Dist })
	return bins
}

// MaxDist returns the largest pair distance, or 0 for an empty cloud.
func MaxDist(pairs []Pair) float64 {
	var m float64
	for _, p := range pairs {
		if p.Dist > m {
			m = p.Dist
		}
	}
	return m
}
