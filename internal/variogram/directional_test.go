package variogram

import (
	"math"
	"testing"
)

func TestDirectionalSeparatesAxes(t *testing.T) {
	// Field y = 10·x0 + x1: the axis-0 semivariogram must be ~100x the
	// axis-1 one at unit distance.
	var xs [][]float64
	var ys []float64
	for i := 0; i <= 4; i++ {
		for j := 0; j <= 4; j++ {
			xs = append(xs, []float64{float64(i), float64(j)})
			ys = append(ys, 10*float64(i)+float64(j))
		}
	}
	dirs, err := Directional(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 2 {
		t.Fatalf("axes = %d", len(dirs))
	}
	g0 := dirs[0].Bins[0].Gamma // axis 0, distance 1: (10)²/2 = 50
	g1 := dirs[1].Bins[0].Gamma // axis 1, distance 1: 1/2
	if math.Abs(g0-50) > 1e-9 || math.Abs(g1-0.5) > 1e-9 {
		t.Errorf("γ0(1) = %v (want 50), γ1(1) = %v (want 0.5)", g0, g1)
	}
	ratio, ok := AnisotropyRatio(dirs)
	if !ok {
		t.Fatal("ratio unavailable")
	}
	if math.Abs(ratio-100) > 1e-6 {
		t.Errorf("anisotropy ratio = %v, want 100", ratio)
	}
}

func TestDirectionalIsotropicField(t *testing.T) {
	var xs [][]float64
	var ys []float64
	for i := 0; i <= 3; i++ {
		for j := 0; j <= 3; j++ {
			xs = append(xs, []float64{float64(i), float64(j)})
			ys = append(ys, float64(i)+float64(j))
		}
	}
	dirs, err := Directional(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	ratio, ok := AnisotropyRatio(dirs)
	if !ok || math.Abs(ratio-1) > 1e-9 {
		t.Errorf("isotropic ratio = %v (ok=%v)", ratio, ok)
	}
}

func TestDirectionalValidation(t *testing.T) {
	if _, err := Directional([][]float64{{1}}, []float64{1, 2}, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Directional(nil, nil, 0); err == nil {
		t.Error("zero dimensions accepted")
	}
	if _, err := Directional([][]float64{{1, 2}}, []float64{1}, 3); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestDirectionalSkipsDiagonalPairs(t *testing.T) {
	xs := [][]float64{{0, 0}, {1, 1}}
	ys := []float64{0, 5}
	dirs, err := Directional(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if len(d.Bins) != 0 {
			t.Errorf("axis %d collected diagonal pairs", d.Axis)
		}
	}
	if _, ok := AnisotropyRatio(dirs); ok {
		t.Error("ratio claimed availability with no data")
	}
}
