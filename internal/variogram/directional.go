package variogram

import (
	"fmt"
	"math"
)

// DirectionalBin is one axis of a directional semivariogram study: the
// empirical bins computed over sample pairs separated along that axis
// only.
type DirectionalBin struct {
	Axis int
	Bins []Bin
}

// Directional computes per-axis empirical semivariograms: for each
// dimension d, Eq. 4 is evaluated over the pairs that differ in dimension
// d alone. Comparing the per-axis slopes reveals geometric anisotropy —
// in a word-length problem, which variables the metric is actually
// sensitive to.
func Directional(xs [][]float64, ys []float64, nv int) ([]DirectionalBin, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("variogram: %d coordinates but %d values", len(xs), len(ys))
	}
	if nv <= 0 {
		return nil, fmt.Errorf("variogram: non-positive dimension count %d", nv)
	}
	perAxis := make([][]Pair, nv)
	for i := 0; i < len(xs); i++ {
		if len(xs[i]) != nv {
			return nil, fmt.Errorf("variogram: sample %d has %d dimensions, want %d", i, len(xs[i]), nv)
		}
		for j := i + 1; j < len(xs); j++ {
			axis := -1
			aligned := true
			for d := 0; d < nv; d++ {
				if xs[i][d] != xs[j][d] {
					if axis != -1 {
						aligned = false
						break
					}
					axis = d
				}
			}
			if !aligned || axis == -1 {
				continue
			}
			dv := ys[i] - ys[j]
			perAxis[axis] = append(perAxis[axis], Pair{
				Dist: math.Abs(xs[i][axis] - xs[j][axis]),
				Sq:   dv * dv,
			})
		}
	}
	out := make([]DirectionalBin, nv)
	for d := 0; d < nv; d++ {
		out[d] = DirectionalBin{Axis: d, Bins: EmpiricalExact(perAxis[d])}
	}
	return out, nil
}

// AnisotropyRatio summarises a directional study as the ratio between the
// steepest and shallowest per-axis short-range slopes (γ at the smallest
// binned distance divided by that distance). Axes with no pairs are
// skipped; a ratio of 1 means the field looks isotropic, large ratios
// mean per-axis distance scaling (kriging.WeightedL1) will pay off. The
// boolean reports whether at least two axes had data.
func AnisotropyRatio(dirs []DirectionalBin) (float64, bool) {
	minSlope := math.Inf(1)
	maxSlope := math.Inf(-1)
	seen := 0
	for _, d := range dirs {
		if len(d.Bins) == 0 {
			continue
		}
		b := d.Bins[0]
		if b.Dist <= 0 {
			if len(d.Bins) < 2 {
				continue
			}
			b = d.Bins[1]
		}
		slope := b.Gamma / b.Dist
		if slope < minSlope {
			minSlope = slope
		}
		if slope > maxSlope {
			maxSlope = slope
		}
		seen++
	}
	if seen < 2 || minSlope <= 0 {
		return 1, seen >= 2
	}
	return maxSlope / minSlope, true
}
