// Package metrics implements the quality and accuracy metrics of the
// paper: output noise power, its dB and equivalent-number-of-bits views,
// the interpolation-error measures of Eqs. 11-12, and small summary
// statistics used when reporting Table I.
package metrics

import (
	"errors"
	"math"
)

// ErrEmpty is returned by aggregations over empty inputs.
var ErrEmpty = errors.New("metrics: empty input")

// NoisePower returns the mean squared difference between an approximate
// output sequence and its reference, P = E[(ŷ - y)²]. This is the
// accuracy metric used by the FIR, IIR, FFT and HEVC benchmarks; the
// paper optimises λ = -P (higher is better).
func NoisePower(approx, ref []float64) (float64, error) {
	if len(approx) != len(ref) {
		return 0, errors.New("metrics: sequence length mismatch")
	}
	if len(ref) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for i, v := range approx {
		d := v - ref[i]
		s += d * d
	}
	return s / float64(len(ref)), nil
}

// DB converts a linear power value to decibels (10·log10). Non-positive
// powers map to -Inf, matching the convention that an exact output has
// unbounded accuracy.
func DB(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(p)
}

// FromDB converts a decibel power value back to linear.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }

// EquivalentBits converts a noise power into the paper's equivalent
// number of bits n, from the uniform-quantisation noise model
// P = 2^(-n)/12 used around Eq. 11, i.e. n = -log2(12·P).
// Non-positive powers map to +Inf bits.
func EquivalentBits(p float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	return -math.Log2(12 * p)
}

// PowerFromBits is the inverse of EquivalentBits: P = 2^(-n)/12.
func PowerFromBits(n float64) float64 {
	return math.Exp2(-n) / 12
}

// EpsilonBits is the paper's Eq. 11: the interpolation error between an
// estimated noise power pHat and the true power p, expressed as an
// equivalent number of bits ε = |log2(pHat / p)|.
//
// When either power is non-positive the notion of "ratio in bits" breaks
// down: the function returns +Inf unless both are non-positive (then 0).
// Kriging weights can be negative, so a slightly negative interpolated
// power is a real occurrence the evaluator has to tolerate.
func EpsilonBits(pHat, p float64) float64 {
	if pHat <= 0 && p <= 0 {
		return 0
	}
	if pHat <= 0 || p <= 0 {
		return math.Inf(1)
	}
	return math.Abs(math.Log2(pHat / p))
}

// EpsilonRelative is the paper's Eq. 12: the relative difference
// |λ̂ - λ| / |λ| between an interpolated metric value and the true one.
// A zero true value with a non-zero estimate yields +Inf.
func EpsilonRelative(lambdaHat, lambda float64) float64 {
	diff := math.Abs(lambdaHat - lambda)
	if lambda == 0 {
		if diff == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return diff / math.Abs(lambda)
}

// Summary accumulates max / mean / count statistics over a stream of
// non-negative error observations, ignoring NaNs (which would otherwise
// poison a whole table row). Infinities are counted separately so the
// harness can report how often the bit-ratio broke down.
type Summary struct {
	n      int
	nInf   int
	sum    float64
	max    float64
	hasAny bool
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	if math.IsInf(v, 0) {
		s.nInf++
		return
	}
	s.n++
	s.sum += v
	if !s.hasAny || v > s.max {
		s.max = v
		s.hasAny = true
	}
}

// N returns the number of finite observations recorded.
func (s *Summary) N() int { return s.n }

// InfCount returns the number of infinite observations that were set
// aside.
func (s *Summary) InfCount() int { return s.nInf }

// Max returns the largest finite observation, or 0 when none was added.
func (s *Summary) Max() float64 {
	if !s.hasAny {
		return 0
	}
	return s.max
}

// Mean returns the mean of the finite observations, or 0 when none was
// added.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs)), nil
}

// Variance returns the population variance of xs.
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(len(xs)), nil
}

// RMSE returns the root-mean-square error between two sequences.
func RMSE(a, b []float64) (float64, error) {
	p, err := NoisePower(a, b)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(p), nil
}

// SNR returns the signal-to-noise ratio in dB between a reference signal
// and its approximation: 10·log10(P_signal / P_noise).
func SNR(approx, ref []float64) (float64, error) {
	noise, err := NoisePower(approx, ref)
	if err != nil {
		return 0, err
	}
	var sig float64
	for _, v := range ref {
		sig += v * v
	}
	sig /= float64(len(ref))
	if noise == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(sig/noise), nil
}
