package metrics

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNoisePowerKnown(t *testing.T) {
	p, err := NoisePower([]float64{1, 2, 3}, []float64{1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(p, 4.0/3, 1e-12) {
		t.Errorf("P = %v, want 4/3", p)
	}
}

func TestNoisePowerZeroOnIdentical(t *testing.T) {
	p, err := NoisePower([]float64{1, -1}, []float64{1, -1})
	if err != nil || p != 0 {
		t.Errorf("P = %v, err = %v", p, err)
	}
}

func TestNoisePowerErrors(t *testing.T) {
	if _, err := NoisePower([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NoisePower(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Error("empty input accepted")
	}
}

func TestDBRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-9, 1e-3, 1, 42} {
		if got := FromDB(DB(p)); !almostEqual(got, p, 1e-12*p) {
			t.Errorf("FromDB(DB(%v)) = %v", p, got)
		}
	}
	if !math.IsInf(DB(0), -1) || !math.IsInf(DB(-1), -1) {
		t.Error("DB of non-positive power should be -Inf")
	}
}

func TestDBKnown(t *testing.T) {
	if !almostEqual(DB(0.1), -10, 1e-12) {
		t.Errorf("DB(0.1) = %v", DB(0.1))
	}
	if !almostEqual(DB(100), 20, 1e-12) {
		t.Errorf("DB(100) = %v", DB(100))
	}
}

func TestEquivalentBitsRoundTrip(t *testing.T) {
	for _, n := range []float64{1, 8, 16, 23.5} {
		if got := EquivalentBits(PowerFromBits(n)); !almostEqual(got, n, 1e-9) {
			t.Errorf("EquivalentBits(PowerFromBits(%v)) = %v", n, got)
		}
	}
	if !math.IsInf(EquivalentBits(0), 1) {
		t.Error("EquivalentBits(0) should be +Inf")
	}
}

func TestEpsilonBits(t *testing.T) {
	// A factor-4 power misestimate is exactly 2 bits.
	if e := EpsilonBits(4e-6, 1e-6); !almostEqual(e, 2, 1e-12) {
		t.Errorf("EpsilonBits(4P, P) = %v, want 2", e)
	}
	// Symmetric in direction.
	if e := EpsilonBits(1e-6, 4e-6); !almostEqual(e, 2, 1e-12) {
		t.Errorf("EpsilonBits(P/4, P) = %v, want 2", e)
	}
	if EpsilonBits(1e-6, 1e-6) != 0 {
		t.Error("exact estimate should give 0 bits")
	}
	if EpsilonBits(0, 0) != 0 {
		t.Error("both-zero should give 0")
	}
	if !math.IsInf(EpsilonBits(-1e-9, 1e-6), 1) {
		t.Error("negative estimate vs positive truth should be +Inf")
	}
	if !math.IsInf(EpsilonBits(1e-6, 0), 1) {
		t.Error("positive estimate vs zero truth should be +Inf")
	}
}

func TestEpsilonRelative(t *testing.T) {
	if e := EpsilonRelative(1.1, 1.0); !almostEqual(e, 0.1, 1e-12) {
		t.Errorf("EpsilonRelative = %v", e)
	}
	if EpsilonRelative(0, 0) != 0 {
		t.Error("0/0 should be 0")
	}
	if !math.IsInf(EpsilonRelative(1, 0), 1) {
		t.Error("nonzero/0 should be +Inf")
	}
	// Sign of the truth must not matter.
	if e := EpsilonRelative(-1.1, -1.0); !almostEqual(e, 0.1, 1e-12) {
		t.Errorf("EpsilonRelative negative = %v", e)
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	if s.Max() != 0 || s.Mean() != 0 || s.N() != 0 {
		t.Error("empty summary not zeroed")
	}
	s.Add(1)
	s.Add(3)
	s.Add(2)
	s.Add(math.Inf(1))
	s.Add(math.NaN())
	if s.N() != 3 {
		t.Errorf("N = %d", s.N())
	}
	if s.InfCount() != 1 {
		t.Errorf("InfCount = %d", s.InfCount())
	}
	if s.Max() != 3 {
		t.Errorf("Max = %v", s.Max())
	}
	if !almostEqual(s.Mean(), 2, 1e-12) {
		t.Errorf("Mean = %v", s.Mean())
	}
}

func TestMeanVariance(t *testing.T) {
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || m != 2.5 {
		t.Errorf("Mean = %v, err = %v", m, err)
	}
	v, err := Variance([]float64{1, 2, 3, 4})
	if err != nil || !almostEqual(v, 1.25, 1e-12) {
		t.Errorf("Variance = %v, err = %v", v, err)
	}
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Error("Mean of empty accepted")
	}
	if _, err := Variance(nil); !errors.Is(err, ErrEmpty) {
		t.Error("Variance of empty accepted")
	}
}

func TestRMSE(t *testing.T) {
	r, err := RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, math.Sqrt(12.5), 1e-12) {
		t.Errorf("RMSE = %v", r)
	}
}

func TestSNR(t *testing.T) {
	// Signal power 1, noise power 0.01 -> 20 dB.
	ref := []float64{1, -1, 1, -1}
	approx := []float64{1.1, -0.9, 1.1, -0.9}
	snr, err := SNR(approx, ref)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(snr, 20, 1e-9) {
		t.Errorf("SNR = %v, want 20", snr)
	}
	inf, err := SNR(ref, ref)
	if err != nil || !math.IsInf(inf, 1) {
		t.Errorf("SNR of exact copy = %v, err = %v", inf, err)
	}
}

func TestPropertyEpsilonBitsSymmetry(t *testing.T) {
	f := func(a, b float64) bool {
		pa, pb := math.Abs(a)+1e-12, math.Abs(b)+1e-12
		return almostEqual(EpsilonBits(pa, pb), EpsilonBits(pb, pa), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyNoisePowerNonNegative(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		ys := make([]float64, len(xs))
		p, err := NoisePower(xs, ys)
		return err == nil && p >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertySummaryMeanLeMax(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		for _, v := range xs {
			// Fold extreme magnitudes into a finite range: the summary
			// is used for interpolation errors, never near overflow.
			s.Add(math.Mod(math.Abs(v), 1e12))
		}
		return s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
