package metrics

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func image(h, w int, fn func(y, x int) float64) [][]float64 {
	out := make([][]float64, h)
	for y := range out {
		out[y] = make([]float64, w)
		for x := range out[y] {
			out[y][x] = fn(y, x)
		}
	}
	return out
}

func TestSSIMIdenticalIsOne(t *testing.T) {
	r := rng.New(1)
	img := image(8, 8, func(y, x int) float64 { return r.Float64() })
	s, err := SSIM(img, img, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-12 {
		t.Errorf("SSIM(x, x) = %v", s)
	}
}

func TestSSIMRange(t *testing.T) {
	r := rng.New(2)
	a := image(8, 8, func(y, x int) float64 { return r.Float64() })
	b := image(8, 8, func(y, x int) float64 { return r.Float64() })
	s, err := SSIM(a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s > 1 || s < -1 {
		t.Errorf("SSIM out of [-1, 1]: %v", s)
	}
}

func TestSSIMDegradesWithNoise(t *testing.T) {
	r := rng.New(3)
	ref := image(8, 8, func(y, x int) float64 {
		return 0.5 + 0.3*math.Sin(float64(x))*math.Cos(float64(y))
	})
	prev := 1.0
	for _, sigma := range []float64{0.01, 0.05, 0.2} {
		noisy := image(8, 8, func(y, x int) float64 { return ref[y][x] + r.NormScaled(0, sigma) })
		s, err := SSIM(noisy, ref, 1)
		if err != nil {
			t.Fatal(err)
		}
		if s >= prev {
			t.Errorf("SSIM did not degrade at sigma=%v: %v >= %v", sigma, s, prev)
		}
		prev = s
	}
}

func TestSSIMLuminanceShiftPenalised(t *testing.T) {
	ref := image(8, 8, func(y, x int) float64 { return 0.5 })
	shifted := image(8, 8, func(y, x int) float64 { return 0.8 })
	s, err := SSIM(shifted, ref, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s > 0.9 {
		t.Errorf("large luminance shift scored %v", s)
	}
}

func TestSSIMValidation(t *testing.T) {
	img := image(4, 4, func(y, x int) float64 { return 0 })
	if _, err := SSIM(nil, nil, 1); err == nil {
		t.Error("empty images accepted")
	}
	if _, err := SSIM(img, image(3, 4, func(y, x int) float64 { return 0 }), 1); err == nil {
		t.Error("height mismatch accepted")
	}
	ragged := image(4, 4, func(y, x int) float64 { return 0 })
	ragged[2] = ragged[2][:2]
	if _, err := SSIM(img, ragged, 1); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := SSIM(img, img, 0); err == nil {
		t.Error("zero dynamic range accepted")
	}
}

func TestPSNRKnown(t *testing.T) {
	ref := image(2, 2, func(y, x int) float64 { return 0.5 })
	off := image(2, 2, func(y, x int) float64 { return 0.6 })
	p, err := PSNR(off, ref, 1)
	if err != nil {
		t.Fatal(err)
	}
	// MSE = 0.01 -> PSNR = 20 dB for unit range.
	if math.Abs(p-20) > 1e-9 {
		t.Errorf("PSNR = %v, want 20", p)
	}
	inf, err := PSNR(ref, ref, 1)
	if err != nil || !math.IsInf(inf, 1) {
		t.Errorf("PSNR of exact copy = %v, err %v", inf, err)
	}
}

func TestPSNRValidation(t *testing.T) {
	img := image(2, 2, func(y, x int) float64 { return 0 })
	if _, err := PSNR(nil, nil, 1); err == nil {
		t.Error("empty accepted")
	}
	if _, err := PSNR(img, img, -1); err == nil {
		t.Error("negative range accepted")
	}
}
