package metrics

import (
	"errors"
	"math"
)

// SSIM computes the structural similarity index between two equally-sized
// grayscale images (values in [0, maxVal]), using the standard single
// -scale formulation of Wang et al. with the usual constants
// C1 = (0.01·L)², C2 = (0.03·L)² applied globally over the image (the
// 8×8 blocks of the HEVC benchmark are already local windows, so no
// sliding window is applied on top).
//
// SSIM is the paper's kind of "quality of service" metric: bounded,
// non-linear in the pixel error, and not expressible analytically from
// the approximation sources — exactly the case where the paper argues a
// generic interpolation-based evaluator earns its keep.
func SSIM(a, b [][]float64, maxVal float64) (float64, error) {
	if len(a) == 0 || len(a) != len(b) {
		return 0, errors.New("metrics: SSIM images empty or of different heights")
	}
	if maxVal <= 0 {
		return 0, errors.New("metrics: SSIM needs a positive dynamic range")
	}
	var muA, muB float64
	n := 0
	for y := range a {
		if len(a[y]) != len(b[y]) {
			return 0, errors.New("metrics: SSIM rows of different widths")
		}
		for x := range a[y] {
			muA += a[y][x]
			muB += b[y][x]
			n++
		}
	}
	if n == 0 {
		return 0, ErrEmpty
	}
	muA /= float64(n)
	muB /= float64(n)
	var varA, varB, cov float64
	for y := range a {
		for x := range a[y] {
			da := a[y][x] - muA
			db := b[y][x] - muB
			varA += da * da
			varB += db * db
			cov += da * db
		}
	}
	varA /= float64(n)
	varB /= float64(n)
	cov /= float64(n)
	c1 := (0.01 * maxVal) * (0.01 * maxVal)
	c2 := (0.03 * maxVal) * (0.03 * maxVal)
	num := (2*muA*muB + c1) * (2*cov + c2)
	den := (muA*muA + muB*muB + c1) * (varA + varB + c2)
	return num / den, nil
}

// PSNR returns the peak signal-to-noise ratio in dB between an
// approximate image and its reference: 10·log10(maxVal² / MSE). An exact
// match yields +Inf.
func PSNR(approx, ref [][]float64, maxVal float64) (float64, error) {
	if len(approx) == 0 || len(approx) != len(ref) {
		return 0, errors.New("metrics: PSNR images empty or of different heights")
	}
	if maxVal <= 0 {
		return 0, errors.New("metrics: PSNR needs a positive dynamic range")
	}
	var mse float64
	n := 0
	for y := range approx {
		if len(approx[y]) != len(ref[y]) {
			return 0, errors.New("metrics: PSNR rows of different widths")
		}
		for x := range approx[y] {
			d := approx[y][x] - ref[y][x]
			mse += d * d
			n++
		}
	}
	if n == 0 {
		return 0, ErrEmpty
	}
	mse /= float64(n)
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(maxVal*maxVal/mse), nil
}
