// Package breaker wraps a simulator in a circuit breaker so that a
// failing simulation backend — a dead simd fleet, a crashing in-process
// simulator — fast-fails requests with a typed error instead of letting
// every request rediscover the outage at full retry-ladder cost.
//
// The breaker is a three-state machine over a rolling outcome window:
//
//	closed    — requests pass through; each outcome (error or not,
//	            slow or not) enters the window. When enough recent
//	            outcomes are failures, the breaker trips.
//	open      — requests are rejected immediately with ErrSimUnavailable
//	            (wrapped in *OpenError, which carries the remaining
//	            cooldown as a Retry-After hint). No load reaches the
//	            backend.
//	half-open — after the cooldown one probe request is let through.
//	            Success closes the breaker and clears the window;
//	            failure reopens it for another cooldown.
//
// The wrapper satisfies the evaluator's ContextSimulator shape
// (Evaluate, EvaluateContext, Nv) and passes a wrapped pool's
// RemoteSimCounts through, so it composes transparently between the
// evaluator and either an in-process simulator or a simpool.Pool.
package breaker

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/space"
)

// ErrSimUnavailable is the sentinel surfaced while the breaker is open
// (or a half-open probe slot is taken): the simulation backend is
// considered down and no attempt was made. Match with errors.Is.
var ErrSimUnavailable = errors.New("breaker: simulator unavailable (circuit open)")

// OpenError is the typed open-state rejection; it satisfies
// errors.Is(err, ErrSimUnavailable).
type OpenError struct {
	// RetryAfter is the time until the breaker will next let a probe
	// through — the natural client backoff.
	RetryAfter time.Duration
}

// Error implements error.
func (e *OpenError) Error() string {
	return fmt.Sprintf("breaker: simulator unavailable (circuit open, next probe in %v)", e.RetryAfter)
}

// Is matches the ErrSimUnavailable sentinel.
func (e *OpenError) Is(target error) bool { return target == ErrSimUnavailable }

// RetryAfterHint returns the suggested client backoff; the HTTP layer
// maps it onto the Retry-After header of the 503 response.
func (e *OpenError) RetryAfterHint() time.Duration { return e.RetryAfter }

// SimUnavailable marks the error as a capacity refusal for the
// evaluator's brownout eligibility check (sniffed structurally, so the
// evaluator needs no import of this package), returning the same
// suggested wait as RetryAfterHint.
func (e *OpenError) SimUnavailable() time.Duration { return e.RetryAfter }

// Sim is the simulator surface the breaker wraps: the evaluator's
// Simulator shape, optionally context-aware (a wrapped ContextSimulator
// is cancelled mid-run; a plain one between runs).
type Sim interface {
	Evaluate(cfg space.Config) (float64, error)
	Nv() int
}

// contextSim is the optional context-aware face of a wrapped Sim.
type contextSim interface {
	EvaluateContext(ctx context.Context, cfg space.Config) (float64, error)
}

// Options tunes a Breaker. The zero value is serviceable: trip when
// ≥ 50% of the last 16 outcomes failed (minimum 4 samples within 10s),
// cool off for 5s between probes.
type Options struct {
	// Window is the rolling outcome window size; zero selects 16.
	Window int
	// MinSamples is the minimum number of recent outcomes before the
	// failure ratio can trip the breaker — one early failure on a cold
	// service must not black out the backend. Zero selects 4.
	MinSamples int
	// Threshold is the failure ratio (0,1] that trips the breaker over
	// a full-enough window; zero selects 0.5.
	Threshold float64
	// Interval bounds how old an outcome may be and still count toward
	// the trip decision; zero selects 10s.
	Interval time.Duration
	// Cooldown is how long an open breaker rejects before letting a
	// half-open probe through; zero selects 5s.
	Cooldown time.Duration
	// SlowThreshold, when positive, counts a successful call slower
	// than this as a failure — a backend answering at 100× its normal
	// latency is as gone as a dead one. Zero disables latency tripping.
	SlowThreshold time.Duration
	// IsFailure classifies errors: only errors for which it returns
	// true count toward tripping. Nil selects the default — every
	// non-context error counts. Deterministic per-config simulation
	// failures (e.g. simpool.ErrSimulation) should be excluded by the
	// caller when the backend distinguishes them: they mean the backend
	// is healthy and the configuration is bad.
	IsFailure func(error) bool
}

// state is the breaker's position in the closed/open/half-open machine.
type state int

const (
	stateClosed state = iota
	stateOpen
	stateHalfOpen
)

// outcome is one recorded call in the rolling window.
type outcome struct {
	at      time.Time
	failure bool
}

// Breaker wraps a Sim with circuit-breaking. Safe for concurrent use.
type Breaker struct {
	sim  Sim
	opts Options

	mu      sync.Mutex
	state   state
	ring    []outcome
	ringN   int // total recorded; ring index = ringN % len(ring)
	openAt  time.Time
	probing bool // a half-open probe is in flight

	nOpens    uint64 // closed/half-open → open transitions
	nRejected uint64 // calls fast-failed while open
}

// Wrap builds a Breaker around sim.
func Wrap(sim Sim, opts Options) *Breaker {
	if opts.Window <= 0 {
		opts.Window = 16
	}
	if opts.MinSamples <= 0 {
		opts.MinSamples = 4
	}
	if opts.Threshold <= 0 || opts.Threshold > 1 {
		opts.Threshold = 0.5
	}
	if opts.Interval <= 0 {
		opts.Interval = 10 * time.Second
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 5 * time.Second
	}
	if opts.IsFailure == nil {
		opts.IsFailure = func(err error) bool {
			return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
		}
	}
	return &Breaker{sim: sim, opts: opts, ring: make([]outcome, opts.Window)}
}

// Nv returns the wrapped simulator's dimensionality.
func (b *Breaker) Nv() int { return b.sim.Nv() }

// Evaluate runs one simulation through the breaker with no deadline.
func (b *Breaker) Evaluate(cfg space.Config) (float64, error) {
	return b.EvaluateContext(context.Background(), cfg)
}

// EvaluateContext runs one simulation through the breaker: admitted
// calls hit the backend and record their outcome; while open, calls are
// rejected in microseconds with an *OpenError.
func (b *Breaker) EvaluateContext(ctx context.Context, cfg space.Config) (float64, error) {
	probe, err := b.admit(time.Now())
	if err != nil {
		return 0, err
	}
	start := time.Now()
	var lam float64
	if cs, ok := b.sim.(contextSim); ok {
		lam, err = cs.EvaluateContext(ctx, cfg)
	} else if err = ctx.Err(); err == nil {
		lam, err = b.sim.Evaluate(cfg)
	}
	b.record(probe, err, time.Since(start))
	return lam, err
}

// admit decides whether a call may reach the backend, returning
// probe=true when the call is the half-open probe.
func (b *Breaker) admit(now time.Time) (probe bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return false, nil
	case stateOpen:
		if wait := b.openAt.Add(b.opts.Cooldown).Sub(now); wait > 0 {
			b.nRejected++
			return false, &OpenError{RetryAfter: wait}
		}
		b.state = stateHalfOpen
		b.probing = true
		return true, nil
	default: // half-open
		if b.probing {
			// The probe slot is taken; everyone else keeps fast-failing
			// until the probe's verdict is in.
			b.nRejected++
			return false, &OpenError{RetryAfter: b.opts.Cooldown}
		}
		b.probing = true
		return true, nil
	}
}

// record books one completed backend call.
func (b *Breaker) record(probe bool, err error, elapsed time.Duration) {
	failure := err != nil && b.opts.IsFailure(err)
	if err == nil && b.opts.SlowThreshold > 0 && elapsed > b.opts.SlowThreshold {
		failure = true
	}
	now := time.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
		if b.state == stateHalfOpen {
			if failure {
				b.reopenLocked(now)
			} else {
				// Recovery: close and forget the outage's window so the
				// next trip needs fresh evidence.
				b.state = stateClosed
				b.ringN = 0
			}
			return
		}
		// The breaker closed or reopened under the probe (a concurrent
		// recording); fall through and book the outcome normally.
	}
	if b.state != stateClosed {
		return
	}
	b.ring[b.ringN%len(b.ring)] = outcome{at: now, failure: failure}
	b.ringN++
	if failure && b.tripLocked(now) {
		b.reopenLocked(now)
	}
}

// tripLocked evaluates the trip condition over the rolling window.
func (b *Breaker) tripLocked(now time.Time) bool {
	n := min(b.ringN, len(b.ring))
	samples, failures := 0, 0
	horizon := now.Add(-b.opts.Interval)
	for i := 0; i < n; i++ {
		o := b.ring[i]
		if o.at.Before(horizon) {
			continue
		}
		samples++
		if o.failure {
			failures++
		}
	}
	return samples >= b.opts.MinSamples &&
		float64(failures) >= b.opts.Threshold*float64(samples)
}

// reopenLocked moves to the open state and restarts the cooldown.
func (b *Breaker) reopenLocked(now time.Time) {
	b.state = stateOpen
	b.openAt = now
	b.probing = false
	b.nOpens++
}

// BreakerCounts exposes the trip counters through the structural
// interface the evaluator sniffs (opens = closed/half-open → open
// transitions; rejected = calls fast-failed while open).
func (b *Breaker) BreakerCounts() (opens, rejected uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.nOpens, b.nRejected
}

// BreakerOpen reports whether the breaker is currently refusing
// non-probe traffic (open, or half-open with the probe slot taken).
func (b *Breaker) BreakerOpen() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != stateClosed
}

// RemoteSimCounts passes a wrapped pool's scheduler counters through
// the structural interface the evaluator sniffs; zeros when the wrapped
// simulator is not a pool.
func (b *Breaker) RemoteSimCounts() (nremote, nhedged, nretried, nrequeued uint64) {
	if rc, ok := b.sim.(interface {
		RemoteSimCounts() (uint64, uint64, uint64, uint64)
	}); ok {
		return rc.RemoteSimCounts()
	}
	return 0, 0, 0, 0
}
