package breaker

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/space"
)

// flakySim fails while down is set, counting backend calls either way.
type flakySim struct {
	nv    int
	down  atomic.Bool
	slow  atomic.Int64 // extra latency in nanoseconds
	calls atomic.Int64
}

var errBackend = errors.New("backend down")

func (s *flakySim) Nv() int { return s.nv }

func (s *flakySim) Evaluate(cfg space.Config) (float64, error) {
	s.calls.Add(1)
	if d := time.Duration(s.slow.Load()); d > 0 {
		time.Sleep(d)
	}
	if s.down.Load() {
		return 0, errBackend
	}
	return -float64(cfg[0]), nil
}

func trip(t *testing.T, b *Breaker, attempts int) {
	t.Helper()
	for i := 0; i < attempts; i++ {
		if _, err := b.Evaluate(space.Config{i}); errors.Is(err, ErrSimUnavailable) {
			return
		}
	}
	t.Fatal("breaker never tripped")
}

// TestBreakerTripsAndFastFails drives failures through a closed breaker
// until it opens, then checks the open-state contract: typed rejection,
// positive Retry-After, no backend traffic, counters moving.
func TestBreakerTripsAndFastFails(t *testing.T) {
	sim := &flakySim{nv: 1}
	b := Wrap(sim, Options{Window: 8, MinSamples: 4, Threshold: 0.5, Cooldown: time.Hour})
	for i := 0; i < 3; i++ {
		if _, err := b.Evaluate(space.Config{i}); err != nil {
			t.Fatalf("healthy call %d: %v", i, err)
		}
	}
	sim.down.Store(true)
	trip(t, b, 20)

	if !b.BreakerOpen() {
		t.Fatal("BreakerOpen() = false after trip")
	}
	calls := sim.calls.Load()
	_, err := b.Evaluate(space.Config{9})
	if !errors.Is(err, ErrSimUnavailable) {
		t.Fatalf("open-state err = %v, want ErrSimUnavailable", err)
	}
	var oe *OpenError
	if !errors.As(err, &oe) {
		t.Fatalf("open-state err %T does not unwrap to *OpenError", err)
	}
	if oe.RetryAfter <= 0 || oe.RetryAfter > time.Hour {
		t.Errorf("RetryAfter = %v, want in (0, cooldown]", oe.RetryAfter)
	}
	if oe.RetryAfterHint() != oe.RetryAfter || oe.SimUnavailable() != oe.RetryAfter {
		t.Error("hint accessors disagree with RetryAfter")
	}
	if sim.calls.Load() != calls {
		t.Error("open breaker let a call through to the backend")
	}
	opens, rejected := b.BreakerCounts()
	if opens != 1 {
		t.Errorf("opens = %d, want 1", opens)
	}
	if rejected < 1 {
		t.Errorf("rejected = %d, want >= 1", rejected)
	}
}

// TestBreakerRecoversThroughProbe opens a breaker with a short cooldown,
// heals the backend, and checks the half-open ladder: first call after
// the cooldown probes the backend, success closes the breaker, and the
// cleared window means one fresh failure does not re-trip it.
func TestBreakerRecoversThroughProbe(t *testing.T) {
	sim := &flakySim{nv: 1}
	b := Wrap(sim, Options{Window: 8, MinSamples: 4, Threshold: 0.5, Cooldown: 20 * time.Millisecond})
	sim.down.Store(true)
	trip(t, b, 20)
	sim.down.Store(false)
	time.Sleep(25 * time.Millisecond)

	if lam, err := b.Evaluate(space.Config{3}); err != nil {
		t.Fatalf("probe call: %v", err)
	} else if lam != -3 {
		t.Fatalf("probe λ = %v, want -3", lam)
	}
	if b.BreakerOpen() {
		t.Fatal("breaker still open after successful probe")
	}
	// The outage's window is forgotten: a single new failure is judged
	// on fresh evidence and must not trip a MinSamples=4 breaker.
	sim.down.Store(true)
	if _, err := b.Evaluate(space.Config{4}); !errors.Is(err, errBackend) {
		t.Fatalf("post-recovery failure err = %v, want the backend error", err)
	}
	if b.BreakerOpen() {
		t.Fatal("breaker re-tripped on one post-recovery failure")
	}
}

// TestBreakerProbeFailureReopens checks the other probe verdict: a
// failing probe sends the breaker straight back to open for another
// cooldown.
func TestBreakerProbeFailureReopens(t *testing.T) {
	sim := &flakySim{nv: 1}
	b := Wrap(sim, Options{Window: 8, MinSamples: 4, Threshold: 0.5, Cooldown: 20 * time.Millisecond})
	sim.down.Store(true)
	trip(t, b, 20)
	time.Sleep(25 * time.Millisecond)

	if _, err := b.Evaluate(space.Config{5}); !errors.Is(err, errBackend) {
		t.Fatalf("probe err = %v, want the backend error", err)
	}
	if !b.BreakerOpen() {
		t.Fatal("breaker closed after a failed probe")
	}
	if _, err := b.Evaluate(space.Config{6}); !errors.Is(err, ErrSimUnavailable) {
		t.Fatalf("post-probe err = %v, want ErrSimUnavailable (cooldown restarted)", err)
	}
	opens, _ := b.BreakerCounts()
	if opens != 2 {
		t.Errorf("opens = %d, want 2 (initial trip + failed probe)", opens)
	}
}

// TestBreakerIsFailureClassification checks that excluded errors never
// trip the breaker: with IsFailure rejecting the backend error, a storm
// of them leaves the breaker closed.
func TestBreakerIsFailureClassification(t *testing.T) {
	sim := &flakySim{nv: 1}
	b := Wrap(sim, Options{Window: 8, MinSamples: 2, Threshold: 0.5, Cooldown: time.Hour,
		IsFailure: func(err error) bool { return !errors.Is(err, errBackend) }})
	sim.down.Store(true)
	for i := 0; i < 20; i++ {
		if _, err := b.Evaluate(space.Config{i}); !errors.Is(err, errBackend) {
			t.Fatalf("call %d: err = %v, want the backend error passed through", i, err)
		}
	}
	if b.BreakerOpen() {
		t.Fatal("breaker tripped on excluded errors")
	}
	// Context cancellations are excluded by the default classifier too.
	b2 := Wrap(&flakySim{nv: 1}, Options{Window: 8, MinSamples: 2, Threshold: 0.5})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 10; i++ {
		b2.EvaluateContext(ctx, space.Config{i})
	}
	if b2.BreakerOpen() {
		t.Fatal("breaker tripped on context cancellations")
	}
}

// TestBreakerSlowThreshold checks latency tripping: successful calls
// slower than SlowThreshold count as failures.
func TestBreakerSlowThreshold(t *testing.T) {
	sim := &flakySim{nv: 1}
	sim.slow.Store(int64(5 * time.Millisecond))
	b := Wrap(sim, Options{Window: 8, MinSamples: 4, Threshold: 0.5, Cooldown: time.Hour,
		SlowThreshold: time.Millisecond})
	tripped := false
	for i := 0; i < 20 && !tripped; i++ {
		_, err := b.Evaluate(space.Config{i})
		tripped = errors.Is(err, ErrSimUnavailable)
	}
	if !tripped {
		t.Fatal("breaker never tripped on slow successes")
	}
}

// TestBreakerPassthrough checks the transparent faces: Nv delegates, a
// healthy wrapped simulator answers normally, and RemoteSimCounts
// returns zeros for a non-pool backend.
func TestBreakerPassthrough(t *testing.T) {
	b := Wrap(&flakySim{nv: 3}, Options{})
	if b.Nv() != 3 {
		t.Errorf("Nv = %d, want 3", b.Nv())
	}
	if lam, err := b.Evaluate(space.Config{2, 0, 0}); err != nil || lam != -2 {
		t.Errorf("Evaluate = %v, %v; want -2, nil", lam, err)
	}
	if r, h, rt, rq := b.RemoteSimCounts(); r|h|rt|rq != 0 {
		t.Errorf("RemoteSimCounts = %d %d %d %d, want zeros", r, h, rt, rq)
	}
}
