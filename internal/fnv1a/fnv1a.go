// Package fnv1a provides the 64-bit FNV-1a hash as allocation-free
// primitives shared by the hot paths that key on it (shard selection in
// internal/store, support fingerprints in internal/kriging). The
// standard library's hash/fnv covers the same function behind the
// hash.Hash64 interface, which forces byte-slice conversions and escapes
// on paths where this package stays on the stack.
package fnv1a

// Offset and Prime are the standard 64-bit FNV parameters.
const (
	Offset uint64 = 14695981039346656037
	Prime  uint64 = 1099511628211
)

// String hashes s.
func String(s string) uint64 {
	h := Offset
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= Prime
	}
	return h
}

// Mix folds the eight bytes of v (little-endian) into h and returns the
// new state. Start from Offset.
func Mix(h, v uint64) uint64 {
	for s := 0; s < 64; s += 8 {
		h ^= (v >> s) & 0xff
		h *= Prime
	}
	return h
}
