//go:build race

// Package raceflag reports whether the race detector is compiled in.
// The AllocsPerRun gate tests skip themselves under -race: race
// instrumentation adds bookkeeping allocations that would fail the
// zero-allocation contracts the gates protect, which are enforced by the
// non-race scripts/check_allocs.sh CI step instead.
package raceflag

// Enabled is true when the binary was built with -race.
const Enabled = true
