package fixed_test

import (
	"fmt"

	"repro/internal/fixed"
)

// ExampleFormat_Quantize shows the truncation and range behaviour of a
// signed Q1.3 format (1 integer bit, 3 fractional bits).
func ExampleFormat_Quantize() {
	f := fixed.NewFormat(1, 3)
	fmt.Println(f.Quantize(0.3))  // truncated to the 1/8 grid
	fmt.Println(f.Quantize(5.0))  // saturated to Max
	fmt.Println(f.Quantize(-0.3)) // truncation rounds toward -inf
	// Output:
	// 0.25
	// 1.875
	// -0.375
}

// ExampleDatapath shows how a benchmark exposes its quantisation nodes as
// optimisation variables.
func ExampleDatapath() {
	d := fixed.NewDatapath()
	mul := d.AddNode("mult_out", 0)
	acc := d.AddNode("add_out", 2)
	// Apply a word-length configuration: 4 fractional bits at the
	// multiplier, 6 at the accumulator.
	if err := d.Apply([]int{4, 6}); err != nil {
		panic(err)
	}
	p := mul.Q(0.7 * 0.3)
	fmt.Println(p, acc.Q(1.0+p))
	// Output:
	// 0.1875 1.1875
}
