package fixed

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestFormatBasics(t *testing.T) {
	f := NewFormat(3, 12)
	if f.WordLength() != 16 {
		t.Errorf("WordLength = %d", f.WordLength())
	}
	if f.Step() != math.Exp2(-12) {
		t.Errorf("Step = %v", f.Step())
	}
	if f.Max() != 8-math.Exp2(-12) {
		t.Errorf("Max = %v", f.Max())
	}
	if f.Min() != -8 {
		t.Errorf("Min = %v", f.Min())
	}
	if err := f.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	if (Format{IntBits: -1}).Validate() == nil {
		t.Error("negative IntBits validated")
	}
	if (Format{FracBits: -1}).Validate() == nil {
		t.Error("negative FracBits validated")
	}
	if (Format{IntBits: 30, FracBits: 30}).Validate() == nil {
		t.Error("oversized format validated")
	}
}

func TestQuantizeTruncate(t *testing.T) {
	f := NewFormat(3, 2) // step 0.25
	cases := []struct{ in, want float64 }{
		{0.0, 0.0},
		{0.3, 0.25},
		{0.25, 0.25},
		{0.999, 0.75},
		{-0.1, -0.25}, // truncation rounds toward -inf
		{-0.25, -0.25},
	}
	for _, c := range cases {
		if got := f.Quantize(c.in); got != c.want {
			t.Errorf("truncate(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestQuantizeRoundNearest(t *testing.T) {
	f := NewFormat(3, 2)
	f.Quant = RoundNearest
	cases := []struct{ in, want float64 }{
		{0.3, 0.25},
		{0.4, 0.5},
		{-0.3, -0.25},
		{-0.4, -0.5},
	}
	for _, c := range cases {
		if got := f.Quantize(c.in); got != c.want {
			t.Errorf("round(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestQuantizeSaturate(t *testing.T) {
	f := NewFormat(1, 2) // range [-2, 1.75]
	if got := f.Quantize(5); got != f.Max() {
		t.Errorf("saturate high = %v, want %v", got, f.Max())
	}
	if got := f.Quantize(-5); got != f.Min() {
		t.Errorf("saturate low = %v, want %v", got, f.Min())
	}
}

func TestQuantizeWrap(t *testing.T) {
	f := NewFormat(1, 2)
	f.Overflow = Wrap
	// Range is [-2, 2); 2 wraps to -2, 2.25 wraps to -1.75.
	if got := f.Quantize(2); got != -2 {
		t.Errorf("wrap(2) = %v, want -2", got)
	}
	if got := f.Quantize(2.25); got != -1.75 {
		t.Errorf("wrap(2.25) = %v, want -1.75", got)
	}
	if got := f.Quantize(-2.25); got != 1.75 {
		t.Errorf("wrap(-2.25) = %v, want 1.75", got)
	}
}

func TestQuantizeNaN(t *testing.T) {
	f := NewFormat(1, 4)
	if got := f.Quantize(math.NaN()); got != 0 {
		t.Errorf("Quantize(NaN) = %v, want 0", got)
	}
}

func TestQuantizeIdempotent(t *testing.T) {
	f := NewFormat(2, 6)
	r := rng.New(3)
	for i := 0; i < 1000; i++ {
		x := r.NormScaled(0, 2)
		q := f.Quantize(x)
		if f.Quantize(q) != q {
			t.Fatalf("quantisation not idempotent at %v", x)
		}
	}
}

func TestQuantizeSlice(t *testing.T) {
	f := NewFormat(3, 1)
	out := f.QuantizeSlice(nil, []float64{0.6, 1.3})
	if out[0] != 0.5 || out[1] != 1.0 {
		t.Errorf("QuantizeSlice = %v", out)
	}
	dst := make([]float64, 2)
	out2 := f.QuantizeSlice(dst, []float64{0.6, 1.3})
	if &out2[0] != &dst[0] {
		t.Error("QuantizeSlice did not reuse dst")
	}
}

func TestEmpiricalNoiseMatchesModel(t *testing.T) {
	// Measured truncation noise power over uniform inputs should match
	// the step²/3 model within a few percent; same for rounding and
	// step²/12.
	r := rng.New(9)
	const n = 200000
	for _, mode := range []QuantMode{Truncate, RoundNearest} {
		f := NewFormat(1, 8)
		f.Quant = mode
		var sum float64
		for i := 0; i < n; i++ {
			x := r.Float64()*2 - 1
			d := f.Quantize(x) - x
			sum += d * d
		}
		got := sum / n
		want := f.QuantizationNoisePower()
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("%s: empirical P = %v, model %v", mode, got, want)
		}
	}
}

func TestOps(t *testing.T) {
	f := NewFormat(3, 2)
	if got := f.Add(0.3, 0.3); got != 0.5 {
		t.Errorf("Add = %v", got) // 0.6 truncates to 0.5
	}
	if got := f.Mul(0.5, 0.6); got != 0.25 {
		t.Errorf("Mul = %v", got) // 0.3 truncates to 0.25
	}
	if got := f.MAC(0.25, 0.5, 0.5); got != 0.5 {
		t.Errorf("MAC = %v", got)
	}
}

func TestModeStrings(t *testing.T) {
	if Truncate.String() != "truncate" || RoundNearest.String() != "round-nearest" {
		t.Error("quant mode names")
	}
	if Saturate.String() != "saturate" || Wrap.String() != "wrap" {
		t.Error("overflow mode names")
	}
	f := NewFormat(3, 12)
	if f.String() != "Q3.12(truncate,saturate)" {
		t.Errorf("Format.String = %q", f.String())
	}
}

func TestPropertyQuantizeWithinRange(t *testing.T) {
	f := func(x float64, ib, fb uint8) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		fmt := NewFormat(int(ib%8), int(fb%16))
		q := fmt.Quantize(x)
		return q >= fmt.Min() && q <= fmt.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyQuantizeErrorBounded(t *testing.T) {
	// Inside the representable range, |q - x| < step for truncation.
	f := func(frac uint8) bool {
		fb := int(frac % 16)
		fmt := NewFormat(4, fb)
		r := rng.New(uint64(frac) + 1)
		for i := 0; i < 100; i++ {
			x := r.NormScaled(0, 3)
			if x < fmt.Min() || x > fmt.Max() {
				continue
			}
			if math.Abs(fmt.Quantize(x)-x) >= fmt.Step() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyMoreBitsLessError(t *testing.T) {
	// Increasing the fractional word-length never increases the
	// truncation error magnitude on a fixed input.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		x := r.NormScaled(0, 0.5)
		prev := math.Inf(1)
		for fb := 2; fb <= 14; fb += 3 {
			fmt := NewFormat(2, fb)
			e := math.Abs(fmt.Quantize(x) - x)
			if e > prev+1e-15 {
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
