package fixed

import (
	"math"
	"testing"
)

// FuzzQuantize checks the quantiser's invariants over arbitrary inputs
// and formats: results stay on the grid, inside the range, and the
// operation is idempotent.
func FuzzQuantize(f *testing.F) {
	f.Add(0.5, uint8(3), uint8(12), false, false)
	f.Add(-1e9, uint8(0), uint8(0), true, true)
	f.Add(math.Pi, uint8(7), uint8(20), true, false)
	f.Fuzz(func(t *testing.T, x float64, ib, fb uint8, roundNearest, wrap bool) {
		fmt := NewFormat(int(ib%8), int(fb%20))
		if roundNearest {
			fmt.Quant = RoundNearest
		}
		if wrap {
			fmt.Overflow = Wrap
		}
		q := fmt.Quantize(x)
		if math.IsNaN(q) || math.IsInf(q, 0) {
			t.Fatalf("non-finite quantisation of %v: %v", x, q)
		}
		if q < fmt.Min() || q > fmt.Max() {
			t.Fatalf("quantised %v to %v outside [%v, %v]", x, q, fmt.Min(), fmt.Max())
		}
		// On-grid: q / step must be integral.
		steps := q / fmt.Step()
		if math.Abs(steps-math.Round(steps)) > 1e-6 {
			t.Fatalf("quantised value %v not on the grid (step %v)", q, fmt.Step())
		}
		if fmt.Quantize(q) != q {
			t.Fatalf("quantisation not idempotent at %v", x)
		}
	})
}
