// Package fixed emulates signed two's-complement fixed-point arithmetic
// with per-node word-length control, the approximation substrate of the
// paper's word-length-optimisation benchmarks.
//
// A Format describes a signed Q-format number with IntBits bits before the
// binary point (excluding the sign bit) and FracBits after it; the total
// word-length is 1 + IntBits + FracBits. Quantisation to a format can
// truncate (the hardware-cheap choice, used by the benchmarks) or round to
// nearest; overflow can saturate or wrap. The emulation keeps values as
// float64 holding exact multiples of the quantisation step, which is exact
// for the word-lengths used here (<= 32 bits total, well within float64's
// 53-bit mantissa).
package fixed

import (
	"fmt"
	"math"
)

// QuantMode selects the quantisation (rounding) behaviour at a format
// boundary.
type QuantMode int

// Quantisation modes.
const (
	// Truncate drops the bits below the LSB (round toward -inf),
	// matching the cheap hardware truncation the paper's fixed-point
	// benchmarks use.
	Truncate QuantMode = iota
	// RoundNearest rounds to the nearest representable value, ties away
	// from zero.
	RoundNearest
)

// String returns the mode name.
func (m QuantMode) String() string {
	switch m {
	case Truncate:
		return "truncate"
	case RoundNearest:
		return "round-nearest"
	default:
		return fmt.Sprintf("QuantMode(%d)", int(m))
	}
}

// OverflowMode selects the behaviour when a value exceeds the format's
// range.
type OverflowMode int

// Overflow modes.
const (
	// Saturate clips to the closest representable extreme.
	Saturate OverflowMode = iota
	// Wrap performs two's-complement wrap-around.
	Wrap
)

// String returns the mode name.
func (m OverflowMode) String() string {
	switch m {
	case Saturate:
		return "saturate"
	case Wrap:
		return "wrap"
	default:
		return fmt.Sprintf("OverflowMode(%d)", int(m))
	}
}

// Format is a signed fixed-point format.
type Format struct {
	IntBits  int // bits before the binary point, excluding sign
	FracBits int // bits after the binary point
	Quant    QuantMode
	Overflow OverflowMode
}

// NewFormat builds a format with the given integer and fractional bit
// counts, truncation quantisation and saturating overflow.
func NewFormat(intBits, fracBits int) Format {
	return Format{IntBits: intBits, FracBits: fracBits}
}

// WordLength returns the total number of bits including the sign bit.
func (f Format) WordLength() int { return 1 + f.IntBits + f.FracBits }

// Step returns the quantisation step 2^-FracBits.
func (f Format) Step() float64 { return math.Exp2(-float64(f.FracBits)) }

// Max returns the largest representable value, 2^IntBits - 2^-FracBits.
func (f Format) Max() float64 {
	return math.Exp2(float64(f.IntBits)) - f.Step()
}

// Min returns the smallest (most negative) representable value,
// -2^IntBits.
func (f Format) Min() float64 { return -math.Exp2(float64(f.IntBits)) }

// Validate reports whether the format is usable by the emulation.
func (f Format) Validate() error {
	if f.IntBits < 0 || f.FracBits < 0 {
		return fmt.Errorf("fixed: negative bit count in %+v", f)
	}
	if f.WordLength() > 52 {
		return fmt.Errorf("fixed: word-length %d exceeds exact float64 emulation range", f.WordLength())
	}
	return nil
}

// String renders the format as e.g. "Q3.12(truncate,saturate)".
func (f Format) String() string {
	return fmt.Sprintf("Q%d.%d(%s,%s)", f.IntBits, f.FracBits, f.Quant, f.Overflow)
}

// Quantize maps x onto the format's grid, applying the quantisation and
// overflow modes. NaN maps to 0 (a fixed-point datapath has no NaN).
func (f Format) Quantize(x float64) float64 {
	if math.IsNaN(x) {
		return 0
	}
	step := f.Step()
	var q float64
	switch f.Quant {
	case Truncate:
		q = math.Floor(x/step) * step
	case RoundNearest:
		q = math.Round(x/step) * step
	default:
		panic("fixed: unknown quantisation mode")
	}
	lo, hi := f.Min(), f.Max()
	if q >= lo && q <= hi {
		return q
	}
	switch f.Overflow {
	case Saturate:
		if q < lo {
			return lo
		}
		return hi
	case Wrap:
		// Two's-complement wrap over the range [lo, hi+step).
		span := math.Exp2(float64(f.IntBits + 1)) // hi+step - lo
		w := math.Mod(q-lo, span)
		if w < 0 {
			w += span
		}
		return lo + w
	default:
		panic("fixed: unknown overflow mode")
	}
}

// QuantizeSlice quantises every element of xs into dst (allocated when
// nil) and returns dst.
func (f Format) QuantizeSlice(dst, xs []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(xs))
	}
	for i, v := range xs {
		dst[i] = f.Quantize(v)
	}
	return dst
}

// QuantizationNoisePowerTruncate returns the analytic noise power of
// truncation to the format under the standard uniform-error model:
// truncation error is uniform on [0, step), so P = step²/3 ... for
// round-to-nearest the error is uniform on [-step/2, step/2) giving
// step²/12. These closed forms anchor the unit tests of the simulated
// datapaths.
func (f Format) QuantizationNoisePower() float64 {
	s := f.Step()
	switch f.Quant {
	case Truncate:
		return s * s / 3
	case RoundNearest:
		return s * s / 12
	default:
		panic("fixed: unknown quantisation mode")
	}
}

// Add quantises the exact sum a+b to the format, modelling an adder whose
// output register has this format.
func (f Format) Add(a, b float64) float64 { return f.Quantize(a + b) }

// Mul quantises the exact product a·b to the format, modelling a
// multiplier whose output register has this format.
func (f Format) Mul(a, b float64) float64 { return f.Quantize(a * b) }

// MAC quantises acc + a·b to the format, modelling a fused
// multiply-accumulate whose output register has this format.
func (f Format) MAC(acc, a, b float64) float64 { return f.Quantize(acc + a*b) }
