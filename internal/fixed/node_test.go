package fixed

import (
	"testing"
)

func TestNodeSetFrac(t *testing.T) {
	n := NewNode("acc", 2)
	n.SetFrac(7)
	if n.Format.FracBits != 7 || n.Format.IntBits != 2 {
		t.Errorf("format after SetFrac: %+v", n.Format)
	}
	if got := n.Q(0.3); got != 0.2968750 {
		// 0.3 truncated to 7 fractional bits: floor(0.3*128)/128 = 38/128.
		t.Errorf("Q(0.3) = %v", got)
	}
}

func TestDatapathApply(t *testing.T) {
	d := NewDatapath()
	d.AddNode("a", 0)
	d.AddNode("b", 1)
	if d.Nv() != 2 {
		t.Fatalf("Nv = %d", d.Nv())
	}
	if err := d.Apply([]int{4, 9}); err != nil {
		t.Fatal(err)
	}
	if d.Nodes[0].Format.FracBits != 4 || d.Nodes[1].Format.FracBits != 9 {
		t.Error("Apply did not set fractional bits")
	}
	if d.Nodes[1].Format.IntBits != 1 {
		t.Error("Apply lost integer bits")
	}
}

func TestDatapathApplyErrors(t *testing.T) {
	d := NewDatapath()
	d.AddNode("a", 0)
	if err := d.Apply([]int{1, 2}); err == nil {
		t.Error("wrong-length config accepted")
	}
	if err := d.Apply([]int{-1}); err == nil {
		t.Error("negative word-length accepted")
	}
}

func TestDatapathFormats(t *testing.T) {
	d := NewDatapath()
	d.AddNode("a", 0)
	d.AddNode("b", 2)
	fmts, err := d.Formats([]int{5, 9})
	if err != nil {
		t.Fatal(err)
	}
	if fmts[0].FracBits != 5 || fmts[0].IntBits != 0 {
		t.Errorf("fmts[0] = %+v", fmts[0])
	}
	if fmts[1].FracBits != 9 || fmts[1].IntBits != 2 {
		t.Errorf("fmts[1] = %+v", fmts[1])
	}
	// Formats must not touch the shared nodes.
	if d.Nodes[0].Format.FracBits == 5 {
		t.Error("Formats mutated node state")
	}
	if _, err := d.Formats([]int{1}); err == nil {
		t.Error("short config accepted")
	}
	if _, err := d.Formats([]int{-1, 2}); err == nil {
		t.Error("negative word-length accepted")
	}
}

func TestDatapathFormatsAgreeWithApply(t *testing.T) {
	d := NewDatapath()
	d.AddNode("x", 1)
	d.AddNode("y", 3)
	cfg := []int{7, 11}
	fmts, err := d.Formats(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	for i, n := range d.Nodes {
		for _, v := range []float64{0.3, -1.7, 2.22} {
			if fmts[i].Quantize(v) != n.Q(v) {
				t.Fatalf("node %d: Formats and Apply disagree at %v", i, v)
			}
		}
	}
}

func TestDatapathNames(t *testing.T) {
	d := NewDatapath()
	d.AddNode("x", 0)
	d.AddNode("y", 0)
	names := d.Names()
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Errorf("Names = %v", names)
	}
}
