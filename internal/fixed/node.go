package fixed

import "fmt"

// Node is a named quantisation point in a fixed-point datapath whose
// fractional word-length is an optimisation variable. The benchmarks
// build their datapaths out of Nodes so that a space.Config (one integer
// per node) can be applied uniformly: configuration value w at a node
// means "keep w fractional bits at this point".
type Node struct {
	// Name identifies the node in diagnostics ("mult_out", "acc", ...).
	Name string
	// IntBits is the fixed integer part chosen from the datapath's
	// dynamic-range analysis; it does not change during optimisation.
	IntBits int
	// Format is the current full format; FracBits is rewritten by Apply.
	Format Format
}

// NewNode builds a node with the given name and integer bits, truncation
// quantisation and saturating overflow, with a provisional fractional
// word-length of 15 bits.
func NewNode(name string, intBits int) *Node {
	return &Node{
		Name:    name,
		IntBits: intBits,
		Format:  NewFormat(intBits, 15),
	}
}

// SetFrac sets the node's fractional word-length.
func (n *Node) SetFrac(frac int) {
	n.Format.IntBits = n.IntBits
	n.Format.FracBits = frac
}

// Q quantises x through the node's current format.
func (n *Node) Q(x float64) float64 { return n.Format.Quantize(x) }

// Datapath is an ordered collection of quantisation nodes; its length is
// the Nv of the benchmark that owns it.
type Datapath struct {
	Nodes []*Node
}

// NewDatapath creates an empty datapath.
func NewDatapath() *Datapath { return &Datapath{} }

// AddNode appends a fresh node and returns it.
func (d *Datapath) AddNode(name string, intBits int) *Node {
	n := NewNode(name, intBits)
	d.Nodes = append(d.Nodes, n)
	return n
}

// Nv returns the number of optimisation variables (nodes).
func (d *Datapath) Nv() int { return len(d.Nodes) }

// Apply sets the fractional word-length of node i to cfg[i] for all nodes.
//
// Apply mutates the shared nodes; concurrent evaluations of the same
// datapath must use Formats instead.
func (d *Datapath) Apply(cfg []int) error {
	if len(cfg) != len(d.Nodes) {
		return fmt.Errorf("fixed: config has %d entries for %d nodes", len(cfg), len(d.Nodes))
	}
	for i, n := range d.Nodes {
		if cfg[i] < 0 {
			return fmt.Errorf("fixed: negative word-length %d at node %s", cfg[i], n.Name)
		}
		n.SetFrac(cfg[i])
	}
	return nil
}

// Formats returns the per-node formats a configuration induces without
// touching the shared nodes, so several goroutines can evaluate the same
// datapath under different configurations concurrently. Formats[i]
// corresponds to Nodes[i].
func (d *Datapath) Formats(cfg []int) ([]Format, error) {
	if len(cfg) != len(d.Nodes) {
		return nil, fmt.Errorf("fixed: config has %d entries for %d nodes", len(cfg), len(d.Nodes))
	}
	out := make([]Format, len(d.Nodes))
	for i, n := range d.Nodes {
		if cfg[i] < 0 {
			return nil, fmt.Errorf("fixed: negative word-length %d at node %s", cfg[i], n.Name)
		}
		f := n.Format
		f.IntBits = n.IntBits
		f.FracBits = cfg[i]
		out[i] = f
	}
	return out, nil
}

// Names returns the node names in order.
func (d *Datapath) Names() []string {
	out := make([]string, len(d.Nodes))
	for i, n := range d.Nodes {
		out[i] = n.Name
	}
	return out
}
