package optim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/space"
)

// AnnealOptions parameterises the simulated-annealing solver for the DSE
// problem of Eq. 1. Annealing explores the hypercube globally, unlike the
// greedy min+1 / max-1 walks, at the price of many more metric
// evaluations — which is precisely the regime where the kriging evaluator
// pays off, so the two compose naturally.
//
// The objective is the penalised cost C(e) + Penalty·max(0, λmin - λ(e)):
// infeasible states are admitted during the walk but priced, and only
// feasible states are eligible as the incumbent.
type AnnealOptions struct {
	LambdaMin float64
	Bounds    space.Bounds
	// Cost is the objective; nil selects TotalBits.
	Cost CostFunc
	// Penalty prices constraint violation; zero selects 1000.
	Penalty float64
	// Steps is the annealing length; zero selects 200·Nv.
	Steps int
	// TStart and TEnd bound the geometric temperature schedule; zeros
	// select 5 and 0.01 (in cost units).
	TStart, TEnd float64
	// Seed drives the walk.
	Seed uint64
}

// AnnealResult reports the annealing outcome.
type AnnealResult struct {
	Best        space.Config
	Lambda      float64
	Cost        float64
	Evaluations int
	Accepted    int
}

// Anneal runs simulated annealing and returns the best feasible
// configuration found. It errors when no feasible state was ever visited;
// cancelling ctx aborts the walk with ctx's error.
func Anneal(ctx context.Context, oracle Oracle, opts AnnealOptions) (AnnealResult, error) {
	if err := opts.Bounds.Validate(); err != nil {
		return AnnealResult{}, err
	}
	nv := opts.Bounds.Dim()
	if nv == 0 {
		return AnnealResult{}, errors.New("optim: zero-dimensional bounds")
	}
	cost := opts.Cost
	if cost == nil {
		cost = TotalBits
	}
	penalty := opts.Penalty
	if penalty == 0 {
		penalty = 1000
	}
	steps := opts.Steps
	if steps == 0 {
		steps = 200 * nv
	}
	tStart, tEnd := opts.TStart, opts.TEnd
	if tStart == 0 {
		tStart = 5
	}
	if tEnd == 0 {
		tEnd = 0.01
	}
	if tEnd > tStart {
		return AnnealResult{}, fmt.Errorf("optim: TEnd %v above TStart %v", tEnd, tStart)
	}
	r := rng.NewNamed(opts.Seed, "anneal")

	res := AnnealResult{}
	energy := func(c space.Config) (float64, float64, error) {
		lam, err := oracle.Evaluate(ctx, c)
		if err != nil {
			return 0, 0, err
		}
		res.Evaluations++
		e := cost(c)
		if lam < opts.LambdaMin {
			e += penalty * (1 + opts.LambdaMin - lam)
		}
		return e, lam, nil
	}

	// Start from the high corner: feasible whenever the problem is.
	cur := opts.Bounds.Corner(true)
	curE, curLam, err := energy(cur)
	if err != nil {
		return res, fmt.Errorf("optim: annealing seed: %w", err)
	}
	bestFeasible := false
	consider := func(c space.Config, lam float64) {
		if lam < opts.LambdaMin {
			return
		}
		cc := cost(c)
		if !bestFeasible || cc < res.Cost {
			res.Best = c.Clone()
			res.Lambda = lam
			res.Cost = cc
			bestFeasible = true
		}
	}
	consider(cur, curLam)

	decay := math.Pow(tEnd/tStart, 1/float64(steps))
	temp := tStart
	for step := 0; step < steps; step++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		// Propose: perturb one variable by ±1 (occasionally ±2 to jump
		// over unit-wide barriers).
		dim := r.Intn(nv)
		delta := 1 + r.Intn(2)
		if r.Float64() < 0.5 {
			delta = -delta
		}
		cand := cur.With(dim, cur[dim]+delta)
		if !opts.Bounds.Contains(cand) {
			temp *= decay
			continue
		}
		candE, candLam, err := energy(cand)
		if err != nil {
			return res, fmt.Errorf("optim: annealing evaluation of %v: %w", cand, err)
		}
		consider(cand, candLam)
		if candE <= curE || r.Float64() < math.Exp((curE-candE)/temp) {
			cur, curE = cand, candE
			res.Accepted++
		}
		temp *= decay
	}
	if !bestFeasible {
		return res, ErrInfeasible
	}
	return res, nil
}
