package optim

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/space"
)

func TestMaxMinusOneConverges(t *testing.T) {
	oracle := additiveNoiseOracle([]float64{1, 1})
	res, err := MaxMinusOne(bg, oracle, MaxMinusOneOptions{
		LambdaMin: -1e-4,
		Bounds:    space.UniformBounds(2, 2, 16),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda < -1e-4 {
		t.Errorf("λ = %v violates constraint", res.Lambda)
	}
	// No further decrement can stay feasible.
	for i := range res.WRes {
		if res.WRes[i] <= 2 {
			continue
		}
		lam, _ := oracle.Evaluate(bg, res.WRes.With(i, res.WRes[i]-1))
		if lam >= -1e-4 {
			t.Errorf("variable %d still decrementable at %v", i, res.WRes)
		}
	}
}

func TestMaxMinusOneAgreesWithMinPlusOne(t *testing.T) {
	// On a separable monotone field both greedy directions should land
	// on costs within a bit or two of each other.
	oracle := additiveNoiseOracle([]float64{1, 3, 0.3})
	bounds := space.UniformBounds(3, 1, 14)
	up, err := MinPlusOne(bg, oracle, MinPlusOneOptions{LambdaMin: -1e-3, Bounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	down, err := MaxMinusOne(bg, oracle, MaxMinusOneOptions{LambdaMin: -1e-3, Bounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(TotalBits(up.WRes)-TotalBits(down.WRes)) > 3 {
		t.Errorf("min+1 cost %v vs max-1 cost %v", TotalBits(up.WRes), TotalBits(down.WRes))
	}
}

func TestMaxMinusOneInfeasible(t *testing.T) {
	oracle := OracleFunc(func(space.Config) (float64, error) { return -1, nil })
	if _, err := MaxMinusOne(bg, oracle, MaxMinusOneOptions{
		LambdaMin: 0,
		Bounds:    space.UniformBounds(2, 1, 4),
	}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v", err)
	}
}

func TestMaxMinusOneStopsAtLowerBound(t *testing.T) {
	oracle := OracleFunc(func(space.Config) (float64, error) { return 1, nil })
	res, err := MaxMinusOne(bg, oracle, MaxMinusOneOptions{
		LambdaMin: 0,
		Bounds:    space.UniformBounds(2, 3, 6),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WRes[0] != 3 || res.WRes[1] != 3 {
		t.Errorf("descent stopped at %v, want the Lo corner", res.WRes)
	}
}

func TestLocalSearchImproves(t *testing.T) {
	// Start from a deliberately padded configuration; local search must
	// strip the slack bits.
	oracle := additiveNoiseOracle([]float64{1, 1})
	bounds := space.UniformBounds(2, 2, 16)
	start := space.Config{14, 14}
	res, err := LocalSearch(bg, oracle, start, LocalSearchOptions{
		LambdaMin: -1e-3,
		Bounds:    bounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Improved {
		t.Error("no improvement found from a padded start")
	}
	if res.Cost >= TotalBits(start) {
		t.Errorf("cost %v not below start %v", res.Cost, TotalBits(start))
	}
	if res.Lambda < -1e-3 {
		t.Error("result violates constraint")
	}
}

func TestLocalSearchAtOptimumStays(t *testing.T) {
	oracle := additiveNoiseOracle([]float64{1, 1})
	bounds := space.UniformBounds(2, 1, 12)
	ex, err := Exhaustive(bg, oracle, ExhaustiveOptions{LambdaMin: -1e-3, Bounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	res, err := LocalSearch(bg, oracle, ex.Best, LocalSearchOptions{LambdaMin: -1e-3, Bounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost < ex.Cost {
		t.Errorf("local search beat the exhaustive optimum: %v < %v", res.Cost, ex.Cost)
	}
}

func TestLocalSearchValidation(t *testing.T) {
	oracle := additiveNoiseOracle([]float64{1})
	bounds := space.UniformBounds(1, 1, 8)
	if _, err := LocalSearch(bg, oracle, space.Config{99}, LocalSearchOptions{Bounds: bounds}); err == nil {
		t.Error("out-of-bounds start accepted")
	}
	if _, err := LocalSearch(bg, oracle, space.Config{1}, LocalSearchOptions{
		LambdaMin: 0, // infeasible at w=1 (λ is negative)
		Bounds:    bounds,
	}); !errors.Is(err, ErrInfeasible) {
		t.Error("infeasible start accepted")
	}
}

func TestLocalSearchBitExchangeWithCustomCost(t *testing.T) {
	// Cost weights variable 0 double, so swapping a bit from 0 to 1 pays.
	oracle := additiveNoiseOracle([]float64{1, 1})
	bounds := space.UniformBounds(2, 2, 16)
	cost := func(c space.Config) float64 { return 2*float64(c[0]) + float64(c[1]) }
	res, err := LocalSearch(bg, oracle, space.Config{12, 10}, LocalSearchOptions{
		LambdaMin: -1e-3,
		Bounds:    bounds,
		Cost:      cost,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost >= cost(space.Config{12, 10}) {
		t.Errorf("weighted cost not reduced: %v", res.Cost)
	}
}

func TestPropertyMaxMinusOneFeasible(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nv := 1 + r.Intn(4)
		coef := make([]float64, nv)
		for i := range coef {
			coef[i] = 0.5 + 4*r.Float64()
		}
		oracle := additiveNoiseOracle(coef)
		lambdaMin := -math.Exp2(-2 * (4 + 6*r.Float64()))
		res, err := MaxMinusOne(bg, oracle, MaxMinusOneOptions{
			LambdaMin: lambdaMin,
			Bounds:    space.UniformBounds(nv, 1, 16),
		})
		if err != nil {
			return errors.Is(err, ErrInfeasible)
		}
		lam, _ := oracle.Evaluate(bg, res.WRes)
		return lam >= lambdaMin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLocalSearchNeverWorsens(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nv := 1 + r.Intn(3)
		coef := make([]float64, nv)
		for i := range coef {
			coef[i] = 0.5 + 2*r.Float64()
		}
		oracle := additiveNoiseOracle(coef)
		bounds := space.UniformBounds(nv, 2, 14)
		start := make(space.Config, nv)
		for i := range start {
			start[i] = r.IntRange(10, 14)
		}
		lambdaMin := -1e-2
		res, err := LocalSearch(bg, oracle, start, LocalSearchOptions{LambdaMin: lambdaMin, Bounds: bounds})
		if err != nil {
			return errors.Is(err, ErrInfeasible)
		}
		return res.Cost <= TotalBits(start) && res.Lambda >= lambdaMin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
