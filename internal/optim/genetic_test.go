package optim

import (
	"errors"
	"testing"

	"repro/internal/space"
)

func TestGeneticFindsFeasibleLowCost(t *testing.T) {
	oracle := additiveNoiseOracle([]float64{1, 1})
	opts := GeneticOptions{
		LambdaMin: -1e-3,
		Bounds:    space.UniformBounds(2, 1, 12),
		Seed:      1,
	}
	res, err := Genetic(bg, oracle, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda < opts.LambdaMin {
		t.Errorf("result λ = %v violates constraint", res.Lambda)
	}
	ex, err := Exhaustive(bg, oracle, ExhaustiveOptions{LambdaMin: opts.LambdaMin, Bounds: opts.Bounds})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > ex.Cost+3 {
		t.Errorf("GA cost %v far above optimum %v", res.Cost, ex.Cost)
	}
}

func TestGeneticDeterministicPerSeed(t *testing.T) {
	oracle := additiveNoiseOracle([]float64{1, 2})
	opts := GeneticOptions{
		LambdaMin:   -1e-3,
		Bounds:      space.UniformBounds(2, 1, 12),
		Generations: 10,
		Seed:        5,
	}
	a, err := Genetic(bg, oracle, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Genetic(bg, oracle, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Best.Equal(b.Best) || a.Evaluations != b.Evaluations {
		t.Errorf("same seed diverged: %v vs %v", a.Best, b.Best)
	}
}

func TestGeneticInfeasible(t *testing.T) {
	oracle := OracleFunc(func(space.Config) (float64, error) { return -1, nil })
	if _, err := Genetic(bg, oracle, GeneticOptions{
		LambdaMin:   0,
		Bounds:      space.UniformBounds(2, 1, 4),
		Generations: 3,
		Seed:        1,
	}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v", err)
	}
}

func TestGeneticValidation(t *testing.T) {
	oracle := additiveNoiseOracle([]float64{1})
	if _, err := Genetic(bg, oracle, GeneticOptions{Bounds: space.Bounds{}}); err == nil {
		t.Error("zero-dim bounds accepted")
	}
	if _, err := Genetic(bg, oracle, GeneticOptions{
		Bounds:     space.UniformBounds(1, 1, 4),
		Population: 4,
		Elite:      4,
	}); err == nil {
		t.Error("elite >= population accepted")
	}
}

func TestGeneticRespectsBounds(t *testing.T) {
	bounds := space.UniformBounds(3, 2, 9)
	oracle := OracleFunc(func(c space.Config) (float64, error) {
		if !bounds.Contains(c) {
			t.Fatalf("GA evaluated out-of-bounds config %v", c)
		}
		return 1, nil
	})
	if _, err := Genetic(bg, oracle, GeneticOptions{
		LambdaMin:   0,
		Bounds:      bounds,
		Generations: 5,
		Seed:        2,
	}); err != nil {
		t.Fatal(err)
	}
}
