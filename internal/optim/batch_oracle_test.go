package optim

import (
	"context"
	"testing"

	"repro/internal/space"
)

// recordingBatchOracle wraps an analytic field and serves both the single
// and the batched oracle interface, counting batch calls.
type recordingBatchOracle struct {
	fn         func(cfg space.Config) float64
	batchCalls int
	evals      int
}

func (o *recordingBatchOracle) Evaluate(_ context.Context, cfg space.Config) (float64, error) {
	o.evals++
	return o.fn(cfg), nil
}

func (o *recordingBatchOracle) EvaluateBatch(_ context.Context, cfgs []space.Config) ([]float64, error) {
	o.batchCalls++
	out := make([]float64, len(cfgs))
	for i, c := range cfgs {
		o.evals++
		out[i] = o.fn(c)
	}
	return out, nil
}

// TestMinPlusOneBatchOracleMatchesSequential demands that routing the
// greedy competition through EvaluateBatch changes neither the result nor
// the evaluation count.
func TestMinPlusOneBatchOracleMatchesSequential(t *testing.T) {
	field := func(cfg space.Config) float64 {
		var p float64
		for _, w := range cfg {
			q := 1.0
			for b := 0; b < w; b++ {
				q /= 2
			}
			p += q
		}
		return -p
	}
	opts := MinPlusOneOptions{
		LambdaMin: -0.001,
		Bounds:    space.Bounds{Lo: space.Config{1, 1, 1}, Hi: space.Config{16, 16, 16}},
	}
	seqOracle := OracleFunc(func(cfg space.Config) (float64, error) { return field(cfg), nil })
	seq, err := MinPlusOne(bg, seqOracle, opts)
	if err != nil {
		t.Fatal(err)
	}
	bo := &recordingBatchOracle{fn: field}
	bat, err := MinPlusOne(bg, bo, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bat.WRes.Equal(seq.WRes) || !bat.WMin.Equal(seq.WMin) {
		t.Errorf("batch result %v/%v != sequential %v/%v", bat.WMin, bat.WRes, seq.WMin, seq.WRes)
	}
	if bat.Lambda != seq.Lambda {
		t.Errorf("batch λ %v != sequential %v", bat.Lambda, seq.Lambda)
	}
	if bat.Evaluations != seq.Evaluations {
		t.Errorf("batch evaluations %d != sequential %d", bat.Evaluations, seq.Evaluations)
	}
	if bo.batchCalls == 0 {
		t.Error("batch oracle was never used for the competition")
	}
}

// TestMaxMinusOneBatchOracleMatchesSequential is the max-1 counterpart:
// the candidate rounds route through EvaluateBatch without changing the
// descent, its λ, or the evaluation count.
func TestMaxMinusOneBatchOracleMatchesSequential(t *testing.T) {
	field := func(cfg space.Config) float64 {
		var p float64
		for _, w := range cfg {
			q := 1.0
			for b := 0; b < w; b++ {
				q /= 2
			}
			p += q
		}
		return -p
	}
	opts := MaxMinusOneOptions{
		LambdaMin: -0.01,
		Bounds:    space.Bounds{Lo: space.Config{1, 1, 1}, Hi: space.Config{12, 12, 12}},
	}
	seqOracle := OracleFunc(func(cfg space.Config) (float64, error) { return field(cfg), nil })
	seq, err := MaxMinusOne(bg, seqOracle, opts)
	if err != nil {
		t.Fatal(err)
	}
	bo := &recordingBatchOracle{fn: field}
	bat, err := MaxMinusOne(bg, bo, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bat.WRes.Equal(seq.WRes) {
		t.Errorf("batch result %v != sequential %v", bat.WRes, seq.WRes)
	}
	if bat.Lambda != seq.Lambda {
		t.Errorf("batch λ %v != sequential %v", bat.Lambda, seq.Lambda)
	}
	if bat.Evaluations != seq.Evaluations || bat.Steps != seq.Steps {
		t.Errorf("batch evals/steps %d/%d != sequential %d/%d",
			bat.Evaluations, bat.Steps, seq.Evaluations, seq.Steps)
	}
	if bo.batchCalls == 0 {
		t.Error("batch oracle was never used for the competition")
	}
}
