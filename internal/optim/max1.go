package optim

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/space"
)

// MaxMinusOneOptions parameterises the max-1 bit descent, the classical
// counterpart of min+1 (Cantin et al. [15] catalogue both): start from
// the all-Nmax configuration — which must satisfy the constraint — and
// repeatedly remove one bit from the variable whose decrement hurts the
// metric least, while the constraint still holds.
type MaxMinusOneOptions struct {
	// LambdaMin is the accuracy constraint λ(w) >= LambdaMin.
	LambdaMin float64
	// Bounds is the word-length box.
	Bounds space.Bounds
	// MaxIterations caps the descent; zero derives a default from the
	// box diameter.
	MaxIterations int
}

// MaxMinusOneResult reports the descent outcome.
type MaxMinusOneResult struct {
	WRes        space.Config
	Lambda      float64
	Evaluations int
	Steps       int
}

// MaxMinusOne runs the max-1 bit descent. Cancelling ctx aborts the
// descent at the next evaluation boundary with ctx's error.
func MaxMinusOne(ctx context.Context, oracle Oracle, opts MaxMinusOneOptions) (MaxMinusOneResult, error) {
	if err := opts.Bounds.Validate(); err != nil {
		return MaxMinusOneResult{}, err
	}
	nv := opts.Bounds.Dim()
	if nv == 0 {
		return MaxMinusOneResult{}, errors.New("optim: zero-dimensional bounds")
	}
	res := MaxMinusOneResult{}
	w := opts.Bounds.Corner(true)
	lam, err := oracle.Evaluate(ctx, w)
	res.Evaluations++
	if err != nil {
		return res, fmt.Errorf("optim: max-1 seed evaluation: %w", err)
	}
	if lam < opts.LambdaMin {
		return res, fmt.Errorf("%w: all-Nmax configuration violates the constraint (λ=%v < %v)",
			ErrInfeasible, lam, opts.LambdaMin)
	}
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		for i := 0; i < nv; i++ {
			maxIter += opts.Bounds.Hi[i] - opts.Bounds.Lo[i]
		}
		maxIter++
	}
	batch, _ := oracle.(BatchOracle)
	for iter := 0; iter < maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		// The round's competition: one single-bit decrement per variable
		// not yet at its lower stop.
		vars := make([]int, 0, nv)
		cands := make([]space.Config, 0, nv)
		for i := 0; i < nv; i++ {
			if w[i] <= opts.Bounds.Lo[i] {
				continue
			}
			vars = append(vars, i)
			cands = append(cands, w.With(i, w[i]-1))
		}
		if len(vars) == 0 {
			break // every variable is at its lower stop
		}
		bestVar := -1
		bestLam := 0.0
		if batch != nil && len(cands) > 1 {
			// The candidates are independent by construction, so a
			// batch-capable oracle evaluates the whole competition at once
			// (and a kriging evaluator serves the shared-support round
			// through one blocked solve); ties keep the lowest variable
			// index, exactly as in the sequential scan.
			lams, err := batch.EvaluateBatch(ctx, cands)
			if err != nil {
				// As in min+1: how much of the failed round executed
				// depends on the oracle, so it is left out of the count.
				return res, fmt.Errorf("optim: max-1 batch evaluation: %w", err)
			}
			res.Evaluations += len(cands)
			for j, li := range lams {
				if li >= opts.LambdaMin && (bestVar == -1 || li > bestLam) {
					bestVar, bestLam = vars[j], li
				}
			}
		} else {
			for j, cand := range cands {
				li, err := oracle.Evaluate(ctx, cand)
				res.Evaluations++
				if err != nil {
					return res, fmt.Errorf("optim: max-1 evaluation of %v: %w", cand, err)
				}
				if li >= opts.LambdaMin && (bestVar == -1 || li > bestLam) {
					bestVar, bestLam = vars[j], li
				}
			}
		}
		if bestVar == -1 {
			break // no admissible decrement remains
		}
		w = w.With(bestVar, w[bestVar]-1)
		lam = bestLam
		res.Steps++
	}
	res.WRes = w
	res.Lambda = lam
	return res, nil
}

// LocalSearchOptions parameterises the ±1 neighbourhood refinement that
// word-length optimisers commonly run after a greedy phase: try every
// single-variable perturbation within Radius of the incumbent, and any
// exchange of one bit between two variables, accepting moves that keep
// the constraint and lower the cost.
type LocalSearchOptions struct {
	LambdaMin float64
	Bounds    space.Bounds
	// Cost is the objective to reduce; nil selects TotalBits.
	Cost CostFunc
	// Radius is the per-variable perturbation range (default 1).
	Radius int
	// MaxIterations caps the improvement loop; zero selects 100.
	MaxIterations int
}

// LocalSearchResult reports the refinement outcome.
type LocalSearchResult struct {
	W           space.Config
	Lambda      float64
	Cost        float64
	Improved    bool
	Evaluations int
}

// LocalSearch refines a feasible incumbent configuration in place.
// Cancelling ctx aborts the refinement with ctx's error.
func LocalSearch(ctx context.Context, oracle Oracle, start space.Config, opts LocalSearchOptions) (LocalSearchResult, error) {
	if err := opts.Bounds.Validate(); err != nil {
		return LocalSearchResult{}, err
	}
	if !opts.Bounds.Contains(start) {
		return LocalSearchResult{}, fmt.Errorf("optim: start %v outside bounds", start)
	}
	cost := opts.Cost
	if cost == nil {
		cost = TotalBits
	}
	radius := opts.Radius
	if radius <= 0 {
		radius = 1
	}
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		maxIter = 100
	}
	res := LocalSearchResult{W: start.Clone()}
	lam, err := oracle.Evaluate(ctx, res.W)
	res.Evaluations++
	if err != nil {
		return res, fmt.Errorf("optim: local-search seed evaluation: %w", err)
	}
	if lam < opts.LambdaMin {
		return res, fmt.Errorf("%w: local search requires a feasible start (λ=%v < %v)",
			ErrInfeasible, lam, opts.LambdaMin)
	}
	res.Lambda = lam
	res.Cost = cost(res.W)

	nv := opts.Bounds.Dim()
	try := func(cand space.Config) (bool, error) {
		if !opts.Bounds.Contains(cand) {
			return false, nil
		}
		cc := cost(cand)
		if cc >= res.Cost {
			return false, nil
		}
		li, err := oracle.Evaluate(ctx, cand)
		res.Evaluations++
		if err != nil {
			return false, err
		}
		if li < opts.LambdaMin {
			return false, nil
		}
		res.W = cand.Clone()
		res.Lambda = li
		res.Cost = cc
		res.Improved = true
		return true, nil
	}
	for iter := 0; iter < maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		moved := false
		// Single-variable decrements (the cost-reducing direction).
		for i := 0; i < nv && !moved; i++ {
			for r := 1; r <= radius && !moved; r++ {
				ok, err := try(res.W.With(i, res.W[i]-r))
				if err != nil {
					return res, err
				}
				moved = ok
			}
		}
		// One-bit exchanges: move a bit from variable i to variable j.
		// Cost-neutral under TotalBits, so they only fire with a custom
		// cost; still checked because they can unlock later decrements.
		for i := 0; i < nv && !moved; i++ {
			for j := 0; j < nv && !moved; j++ {
				if i == j {
					continue
				}
				cand := res.W.With(i, res.W[i]-1)
				cand[j]++
				ok, err := try(cand)
				if err != nil {
					return res, err
				}
				moved = ok
			}
		}
		if !moved {
			break
		}
	}
	return res, nil
}
