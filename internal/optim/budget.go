package optim

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/space"
)

// NoiseBudgetOptions parameterises the steepest-descent noise-budgeting
// algorithm of the error-sensitivity benchmark (paper §IV, SqueezeNet;
// algorithm after Parashar et al. [22]).
//
// A configuration assigns each error source an integer power index; a
// larger index means a more powerful injected error (cheaper hardware).
// The optimiser maximises the total injected error subject to the quality
// constraint λ(e) >= LambdaMin.
type NoiseBudgetOptions struct {
	// LambdaMin is the quality constraint (e.g. a minimum classification
	// agreement probability).
	LambdaMin float64
	// Bounds gives the index range of each error source; Lo is the
	// quietest (starting) level, Hi the loudest allowed.
	Bounds space.Bounds
	// MaxIterations caps the greedy loop; zero selects a default
	// proportional to the total index range.
	MaxIterations int
}

// NoiseBudgetResult reports the budgeting outcome.
type NoiseBudgetResult struct {
	// E is the final error-source configuration: the loudest vector
	// still satisfying the constraint.
	E space.Config
	// Lambda is λ(E).
	Lambda float64
	// Evaluations counts oracle calls.
	Evaluations int
	// Steps counts committed increments.
	Steps int
}

// NoiseBudget runs the steepest-descent budgeting loop: starting from the
// quietest configuration, repeatedly try incrementing each source by one
// step, commit the increment that keeps the highest quality, and stop
// when every possible increment would violate the constraint. Cancelling
// ctx aborts the loop at the next evaluation boundary with ctx's error.
func NoiseBudget(ctx context.Context, oracle Oracle, opts NoiseBudgetOptions) (NoiseBudgetResult, error) {
	if err := opts.Bounds.Validate(); err != nil {
		return NoiseBudgetResult{}, err
	}
	nv := opts.Bounds.Dim()
	if nv == 0 {
		return NoiseBudgetResult{}, errors.New("optim: zero-dimensional bounds")
	}
	res := NoiseBudgetResult{}
	e := opts.Bounds.Corner(false) // quietest

	lam, err := oracle.Evaluate(ctx, e)
	res.Evaluations++
	if err != nil {
		return res, fmt.Errorf("optim: budgeting seed evaluation: %w", err)
	}
	if lam < opts.LambdaMin {
		return res, fmt.Errorf("%w: quietest configuration already violates the constraint (λ=%v < %v)",
			ErrInfeasible, lam, opts.LambdaMin)
	}
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		for i := 0; i < nv; i++ {
			maxIter += opts.Bounds.Hi[i] - opts.Bounds.Lo[i]
		}
		maxIter++
	}
	for iter := 0; iter < maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		bestVar := -1
		bestLam := 0.0
		for i := 0; i < nv; i++ {
			if e[i] >= opts.Bounds.Hi[i] {
				continue
			}
			cand := e.With(i, e[i]+1)
			li, err := oracle.Evaluate(ctx, cand)
			res.Evaluations++
			if err != nil {
				return res, fmt.Errorf("optim: budgeting evaluation of %v: %w", cand, err)
			}
			if li >= opts.LambdaMin && (bestVar == -1 || li > bestLam) {
				bestVar, bestLam = i, li
			}
		}
		if bestVar == -1 {
			break // no admissible increment remains
		}
		e = e.With(bestVar, e[bestVar]+1)
		lam = bestLam
		res.Steps++
	}
	res.E = e
	res.Lambda = lam
	return res, nil
}
