package optim

import (
	"context"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/space"
)

// bg is the request context of tests that never cancel.
var bg = context.Background()

// additiveNoiseOracle models the canonical word-length accuracy field:
// λ(w) = -Σ c_i·2^(-2·w_i), smooth and monotone in every variable.
func additiveNoiseOracle(coef []float64) Oracle {
	return OracleFunc(func(c space.Config) (float64, error) {
		var p float64
		for i, w := range c {
			p += coef[i] * math.Exp2(-2*float64(w))
		}
		return -p, nil
	})
}

func TestMinPlusOneConverges(t *testing.T) {
	oracle := additiveNoiseOracle([]float64{1, 1})
	res, err := MinPlusOne(bg, oracle, MinPlusOneOptions{
		LambdaMin: -1e-4,
		Bounds:    space.UniformBounds(2, 2, 16),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda < -1e-4 {
		t.Errorf("result λ = %v violates the constraint", res.Lambda)
	}
	// Per-variable minimum must be below or equal to the final result.
	for i := range res.WRes {
		if res.WMin[i] > res.WRes[i] {
			t.Errorf("wmin[%d] = %d > wres[%d] = %d", i, res.WMin[i], i, res.WRes[i])
		}
	}
	if res.Evaluations <= 0 {
		t.Error("no evaluations counted")
	}
}

func TestMinPlusOneMatchesExhaustiveCost(t *testing.T) {
	// On a separable monotone field the greedy min+1 solution should be
	// within a small margin of the exhaustive optimum's cost.
	oracle := additiveNoiseOracle([]float64{1, 4})
	opts := MinPlusOneOptions{
		LambdaMin: -1e-3,
		Bounds:    space.UniformBounds(2, 1, 12),
	}
	res, err := MinPlusOne(bg, oracle, opts)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := Exhaustive(bg, oracle, ExhaustiveOptions{LambdaMin: opts.LambdaMin, Bounds: opts.Bounds})
	if err != nil {
		t.Fatal(err)
	}
	if TotalBits(res.WRes) > ex.Cost+2 {
		t.Errorf("greedy cost %v, exhaustive %v", TotalBits(res.WRes), ex.Cost)
	}
}

func TestMinPlusOneWMinIsMinimal(t *testing.T) {
	// wmin_i is the smallest value keeping the constraint with all other
	// variables at Nmax; verify against direct evaluation.
	oracle := additiveNoiseOracle([]float64{1, 2, 0.5})
	opts := MinPlusOneOptions{
		LambdaMin: -1e-3,
		Bounds:    space.UniformBounds(3, 1, 14),
	}
	res, err := MinPlusOne(bg, oracle, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		at := opts.Bounds.Corner(true).With(i, res.WMin[i])
		lam, _ := oracle.Evaluate(bg, at)
		if lam < opts.LambdaMin {
			t.Errorf("wmin[%d] = %d does not satisfy the constraint", i, res.WMin[i])
		}
		if res.WMin[i] > opts.Bounds.Lo[i] {
			below, _ := oracle.Evaluate(bg, at.With(i, res.WMin[i]-1))
			if below >= opts.LambdaMin {
				t.Errorf("wmin[%d] = %d is not minimal (wl-1 still passes)", i, res.WMin[i])
			}
		}
	}
}

func TestMinPlusOneInfeasible(t *testing.T) {
	oracle := OracleFunc(func(space.Config) (float64, error) { return -1, nil })
	_, err := MinPlusOne(bg, oracle, MinPlusOneOptions{
		LambdaMin: 0, // unreachable: λ is always -1
		Bounds:    space.UniformBounds(2, 1, 4),
	})
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestMinPlusOnePropagatesOracleError(t *testing.T) {
	boom := errors.New("boom")
	oracle := OracleFunc(func(space.Config) (float64, error) { return 0, boom })
	if _, err := MinPlusOne(bg, oracle, MinPlusOneOptions{
		LambdaMin: -1, Bounds: space.UniformBounds(1, 1, 4),
	}); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestMinPlusOneZeroDim(t *testing.T) {
	if _, err := MinPlusOne(bg, additiveNoiseOracle(nil), MinPlusOneOptions{
		Bounds: space.Bounds{},
	}); err == nil {
		t.Error("zero-dimensional bounds accepted")
	}
}

func TestMinPlusOneInvalidBounds(t *testing.T) {
	if _, err := MinPlusOne(bg, additiveNoiseOracle([]float64{1}), MinPlusOneOptions{
		Bounds: space.Bounds{Lo: []int{5}, Hi: []int{2}},
	}); err == nil {
		t.Error("inverted bounds accepted")
	}
}

func TestNoiseBudgetConverges(t *testing.T) {
	// Quality decreases as indices grow: λ = 1 - Σ idx_i/100.
	oracle := OracleFunc(func(c space.Config) (float64, error) {
		var s float64
		for _, v := range c {
			s += float64(v) / 100
		}
		return 1 - s, nil
	})
	res, err := NoiseBudget(bg, oracle, NoiseBudgetOptions{
		LambdaMin: 0.9,
		Bounds:    space.UniformBounds(2, 0, 20),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda < 0.9 {
		t.Errorf("final λ = %v violates the constraint", res.Lambda)
	}
	// Σ idx should reach exactly 10 (λ = 1 - 10/100 = 0.9).
	total := 0
	for _, v := range res.E {
		total += v
	}
	if total != 10 {
		t.Errorf("total budget = %d, want 10", total)
	}
	if res.Steps != 10 {
		t.Errorf("steps = %d", res.Steps)
	}
}

func TestNoiseBudgetPrefersInsensitiveSource(t *testing.T) {
	// Source 1 is 10x less damaging; the budget should land there.
	oracle := OracleFunc(func(c space.Config) (float64, error) {
		return 1 - float64(c[0])*0.1 - float64(c[1])*0.01, nil
	})
	res, err := NoiseBudget(bg, oracle, NoiseBudgetOptions{
		LambdaMin: 0.95,
		Bounds:    space.UniformBounds(2, 0, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.E[1] <= res.E[0] {
		t.Errorf("budget %v should favour the insensitive source", res.E)
	}
}

func TestNoiseBudgetInfeasibleStart(t *testing.T) {
	oracle := OracleFunc(func(space.Config) (float64, error) { return 0.5, nil })
	_, err := NoiseBudget(bg, oracle, NoiseBudgetOptions{
		LambdaMin: 0.9,
		Bounds:    space.UniformBounds(2, 0, 5),
	})
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestNoiseBudgetStopsAtBounds(t *testing.T) {
	// Quality never drops: the budget must stop at the Hi corner rather
	// than loop forever.
	oracle := OracleFunc(func(space.Config) (float64, error) { return 1, nil })
	res, err := NoiseBudget(bg, oracle, NoiseBudgetOptions{
		LambdaMin: 0.5,
		Bounds:    space.UniformBounds(2, 0, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.E[0] != 3 || res.E[1] != 3 {
		t.Errorf("budget %v should saturate at Hi", res.E)
	}
}

func TestExhaustiveFindsOptimum(t *testing.T) {
	oracle := additiveNoiseOracle([]float64{1, 1})
	res, err := Exhaustive(bg, oracle, ExhaustiveOptions{
		LambdaMin: -1e-2,
		Bounds:    space.UniformBounds(2, 1, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda < -1e-2 {
		t.Error("optimum violates constraint")
	}
	if res.Evaluations != 64 {
		t.Errorf("evaluations = %d, want 64", res.Evaluations)
	}
	// Verify optimality directly.
	opts := ExhaustiveOptions{LambdaMin: -1e-2, Bounds: space.UniformBounds(2, 1, 8)}
	opts.Bounds.Enumerate(func(c space.Config) bool {
		lam, _ := oracle.Evaluate(bg, c)
		if lam >= opts.LambdaMin && TotalBits(c) < res.Cost {
			t.Errorf("found cheaper feasible %v (cost %v < %v)", c, TotalBits(c), res.Cost)
			return false
		}
		return true
	})
}

func TestExhaustiveNoFeasible(t *testing.T) {
	oracle := OracleFunc(func(space.Config) (float64, error) { return -1, nil })
	if _, err := Exhaustive(bg, oracle, ExhaustiveOptions{
		LambdaMin: 0,
		Bounds:    space.UniformBounds(2, 1, 3),
	}); err == nil {
		t.Error("no-feasible search did not error")
	}
}

func TestExhaustiveSpaceTooLarge(t *testing.T) {
	if _, err := Exhaustive(bg, additiveNoiseOracle(make([]float64, 23)), ExhaustiveOptions{
		Bounds: space.UniformBounds(23, 2, 14),
	}); err == nil {
		t.Error("23-dimensional enumeration accepted")
	}
}

func TestExhaustiveCustomCost(t *testing.T) {
	// With a cost that prefers variable 0 large, the optimum changes.
	oracle := OracleFunc(func(space.Config) (float64, error) { return 1, nil })
	res, err := Exhaustive(bg, oracle, ExhaustiveOptions{
		LambdaMin: 0,
		Bounds:    space.UniformBounds(1, 1, 5),
		Cost:      func(c space.Config) float64 { return -float64(c[0]) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best[0] != 5 {
		t.Errorf("custom cost optimum = %v", res.Best)
	}
}

func TestTotalBits(t *testing.T) {
	if TotalBits(space.Config{3, 4, 5}) != 12 {
		t.Error("TotalBits wrong")
	}
}

func TestPropertyMinPlusOneFeasibleAndMinimalish(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nv := 1 + r.Intn(4)
		coef := make([]float64, nv)
		for i := range coef {
			coef[i] = 0.5 + 4*r.Float64()
		}
		oracle := additiveNoiseOracle(coef)
		lambdaMin := -math.Exp2(-2 * (4 + 6*r.Float64()))
		opts := MinPlusOneOptions{LambdaMin: lambdaMin, Bounds: space.UniformBounds(nv, 1, 16)}
		res, err := MinPlusOne(bg, oracle, opts)
		if err != nil {
			return errors.Is(err, ErrInfeasible)
		}
		if res.Lambda < lambdaMin {
			return false
		}
		// Feasibility re-check against the oracle.
		lam, _ := oracle.Evaluate(bg, res.WRes)
		return lam >= lambdaMin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBudgetRespectsConstraint(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nv := 1 + r.Intn(4)
		sens := make([]float64, nv)
		for i := range sens {
			sens[i] = 0.001 + 0.05*r.Float64()
		}
		oracle := OracleFunc(func(c space.Config) (float64, error) {
			q := 1.0
			for i, v := range c {
				q -= sens[i] * float64(v)
			}
			return q, nil
		})
		lambdaMin := 0.7 + 0.25*r.Float64()
		res, err := NoiseBudget(bg, oracle, NoiseBudgetOptions{
			LambdaMin: lambdaMin,
			Bounds:    space.UniformBounds(nv, 0, 12),
		})
		if err != nil {
			return errors.Is(err, ErrInfeasible)
		}
		return res.Lambda >= lambdaMin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
