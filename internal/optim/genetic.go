package optim

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/rng"
	"repro/internal/space"
)

// GeneticOptions parameterises the genetic-algorithm solver for the DSE
// problem of Eq. 1, the other classical metaheuristic used for
// word-length optimisation. Like Anneal it consumes many metric
// evaluations and therefore profits directly from the kriging evaluator.
type GeneticOptions struct {
	LambdaMin float64
	Bounds    space.Bounds
	// Cost is the objective; nil selects TotalBits.
	Cost CostFunc
	// Penalty prices constraint violation in the fitness; zero selects
	// 1000.
	Penalty float64
	// Population is the population size; zero selects 4·Nv (at least 8).
	Population int
	// Generations is the evolution length; zero selects 40.
	Generations int
	// MutationRate is the per-gene ±1 mutation probability; zero
	// selects 0.2.
	MutationRate float64
	// Elite is the number of top individuals copied unchanged; zero
	// selects 2.
	Elite int
	// Seed drives the evolution.
	Seed uint64
}

// GeneticResult reports the evolution outcome.
type GeneticResult struct {
	Best        space.Config
	Lambda      float64
	Cost        float64
	Evaluations int
	Generations int
}

type individual struct {
	genome  space.Config
	fitness float64 // lower is better (penalised cost)
	lambda  float64
}

// Genetic runs the genetic algorithm and returns the best feasible
// configuration found across all generations; cancelling ctx aborts the
// evolution with ctx's error.
func Genetic(ctx context.Context, oracle Oracle, opts GeneticOptions) (GeneticResult, error) {
	if err := opts.Bounds.Validate(); err != nil {
		return GeneticResult{}, err
	}
	nv := opts.Bounds.Dim()
	if nv == 0 {
		return GeneticResult{}, errors.New("optim: zero-dimensional bounds")
	}
	cost := opts.Cost
	if cost == nil {
		cost = TotalBits
	}
	penalty := opts.Penalty
	if penalty == 0 {
		penalty = 1000
	}
	pop := opts.Population
	if pop == 0 {
		pop = 4 * nv
		if pop < 8 {
			pop = 8
		}
	}
	gens := opts.Generations
	if gens == 0 {
		gens = 40
	}
	mut := opts.MutationRate
	if mut == 0 {
		mut = 0.2
	}
	elite := opts.Elite
	if elite == 0 {
		elite = 2
	}
	if elite >= pop {
		return GeneticResult{}, fmt.Errorf("optim: elite %d must be below population %d", elite, pop)
	}
	r := rng.NewNamed(opts.Seed, "genetic")

	res := GeneticResult{}
	bestFeasible := false
	evaluate := func(g space.Config) (individual, error) {
		if err := ctx.Err(); err != nil {
			return individual{}, err
		}
		lam, err := oracle.Evaluate(ctx, g)
		if err != nil {
			return individual{}, err
		}
		res.Evaluations++
		fit := cost(g)
		if lam < opts.LambdaMin {
			fit += penalty * (1 + opts.LambdaMin - lam)
		} else if !bestFeasible || cost(g) < res.Cost {
			res.Best = g.Clone()
			res.Lambda = lam
			res.Cost = cost(g)
			bestFeasible = true
		}
		return individual{genome: g, fitness: fit, lambda: lam}, nil
	}

	// Initial population: the always-feasible high corner plus random
	// lattice points.
	cur := make([]individual, 0, pop)
	seedInd, err := evaluate(opts.Bounds.Corner(true))
	if err != nil {
		return res, fmt.Errorf("optim: GA seed: %w", err)
	}
	cur = append(cur, seedInd)
	for len(cur) < pop {
		g := make(space.Config, nv)
		for d := 0; d < nv; d++ {
			g[d] = r.IntRange(opts.Bounds.Lo[d], opts.Bounds.Hi[d])
		}
		ind, err := evaluate(g)
		if err != nil {
			return res, err
		}
		cur = append(cur, ind)
	}

	tournament := func() individual {
		a := cur[r.Intn(len(cur))]
		b := cur[r.Intn(len(cur))]
		if a.fitness <= b.fitness {
			return a
		}
		return b
	}
	for gen := 0; gen < gens; gen++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		res.Generations = gen + 1
		sort.SliceStable(cur, func(i, j int) bool { return cur[i].fitness < cur[j].fitness })
		next := make([]individual, 0, pop)
		next = append(next, cur[:elite]...)
		for len(next) < pop {
			p1, p2 := tournament(), tournament()
			child := make(space.Config, nv)
			for d := 0; d < nv; d++ {
				// Uniform crossover.
				if r.Float64() < 0.5 {
					child[d] = p1.genome[d]
				} else {
					child[d] = p2.genome[d]
				}
				// ±1 mutation, clamped into bounds.
				if r.Float64() < mut {
					if r.Float64() < 0.5 {
						child[d]++
					} else {
						child[d]--
					}
					if child[d] < opts.Bounds.Lo[d] {
						child[d] = opts.Bounds.Lo[d]
					}
					if child[d] > opts.Bounds.Hi[d] {
						child[d] = opts.Bounds.Hi[d]
					}
				}
			}
			ind, err := evaluate(child)
			if err != nil {
				return res, err
			}
			next = append(next, ind)
		}
		cur = next
	}
	if !bestFeasible {
		return res, ErrInfeasible
	}
	return res, nil
}
