package optim

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/space"
)

// CostFunc scores the implementation cost C(e) of a configuration; the
// DSE problem of Eq. 1 minimises it subject to λ(e) >= λmin. For
// word-length problems the natural cost is the total number of bits.
type CostFunc func(cfg space.Config) float64

// TotalBits is the default cost: the sum of all word-lengths.
func TotalBits(cfg space.Config) float64 {
	s := 0
	for _, v := range cfg {
		s += v
	}
	return float64(s)
}

// ExhaustiveOptions parameterises the brute-force reference solver.
type ExhaustiveOptions struct {
	LambdaMin float64
	Bounds    space.Bounds
	Cost      CostFunc // nil selects TotalBits
	// MaxConfigs aborts the search if the lattice is larger than this
	// (guarding against accidentally enumerating a 23-dimensional cube).
	// Zero selects 1<<22.
	MaxConfigs int
}

// ExhaustiveResult reports the brute-force optimum.
type ExhaustiveResult struct {
	Best        space.Config
	Lambda      float64
	Cost        float64
	Evaluations int
}

// Exhaustive enumerates the whole bounded lattice and returns the
// feasible configuration of minimum cost, the ground truth the
// integration tests compare the greedy optimisers against on small
// spaces. Cancelling ctx aborts the enumeration with ctx's error.
func Exhaustive(ctx context.Context, oracle Oracle, opts ExhaustiveOptions) (ExhaustiveResult, error) {
	if err := opts.Bounds.Validate(); err != nil {
		return ExhaustiveResult{}, err
	}
	cost := opts.Cost
	if cost == nil {
		cost = TotalBits
	}
	limit := opts.MaxConfigs
	if limit == 0 {
		limit = 1 << 22
	}
	if opts.Bounds.Size() > limit {
		return ExhaustiveResult{}, fmt.Errorf("optim: search space of %d configurations exceeds limit %d",
			opts.Bounds.Size(), limit)
	}
	res := ExhaustiveResult{}
	var evalErr error
	found := false
	opts.Bounds.Enumerate(func(c space.Config) bool {
		if err := ctx.Err(); err != nil {
			evalErr = err
			return false
		}
		lam, err := oracle.Evaluate(ctx, c)
		res.Evaluations++
		if err != nil {
			evalErr = fmt.Errorf("optim: exhaustive evaluation of %v: %w", c, err)
			return false
		}
		if lam >= opts.LambdaMin {
			cc := cost(c)
			if !found || cc < res.Cost {
				res.Best = c.Clone()
				res.Lambda = lam
				res.Cost = cc
				found = true
			}
		}
		return true
	})
	if evalErr != nil {
		return res, evalErr
	}
	if !found {
		return res, errors.New("optim: exhaustive search found no feasible configuration")
	}
	return res, nil
}
