package optim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/space"
)

func TestAnnealFindsFeasibleLowCost(t *testing.T) {
	oracle := additiveNoiseOracle([]float64{1, 1})
	opts := AnnealOptions{
		LambdaMin: -1e-3,
		Bounds:    space.UniformBounds(2, 1, 12),
		Seed:      1,
	}
	res, err := Anneal(bg, oracle, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda < opts.LambdaMin {
		t.Errorf("result λ = %v violates constraint", res.Lambda)
	}
	ex, err := Exhaustive(bg, oracle, ExhaustiveOptions{LambdaMin: opts.LambdaMin, Bounds: opts.Bounds})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > ex.Cost+3 {
		t.Errorf("annealed cost %v far above optimum %v", res.Cost, ex.Cost)
	}
	if res.Evaluations == 0 || res.Accepted == 0 {
		t.Error("annealing did not move")
	}
}

func TestAnnealDeterministicPerSeed(t *testing.T) {
	oracle := additiveNoiseOracle([]float64{1, 2, 0.5})
	opts := AnnealOptions{
		LambdaMin: -1e-3,
		Bounds:    space.UniformBounds(3, 1, 12),
		Seed:      7,
	}
	a, err := Anneal(bg, oracle, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anneal(bg, oracle, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Best.Equal(b.Best) || a.Evaluations != b.Evaluations {
		t.Errorf("same seed diverged: %v vs %v", a.Best, b.Best)
	}
}

func TestAnnealInfeasible(t *testing.T) {
	oracle := OracleFunc(func(space.Config) (float64, error) { return -1, nil })
	if _, err := Anneal(bg, oracle, AnnealOptions{
		LambdaMin: 0,
		Bounds:    space.UniformBounds(2, 1, 4),
		Seed:      1,
	}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v", err)
	}
}

func TestAnnealValidation(t *testing.T) {
	oracle := additiveNoiseOracle([]float64{1})
	if _, err := Anneal(bg, oracle, AnnealOptions{Bounds: space.Bounds{}}); err == nil {
		t.Error("zero-dim bounds accepted")
	}
	if _, err := Anneal(bg, oracle, AnnealOptions{
		Bounds: space.UniformBounds(1, 1, 4),
		TStart: 1, TEnd: 10,
	}); err == nil {
		t.Error("inverted temperature schedule accepted")
	}
}

func TestAnnealVsGreedyOnCoupledField(t *testing.T) {
	// A non-separable field with a shallow coupling term; both solvers
	// must return feasible configurations of comparable cost.
	oracle := OracleFunc(func(c space.Config) (float64, error) {
		p := 0.0
		for _, w := range c {
			p += math.Exp2(-2 * float64(w))
		}
		p += 0.5 * math.Exp2(-float64(c[0])-float64(c[1]))
		return -p, nil
	})
	bounds := space.UniformBounds(2, 1, 14)
	g, err := MinPlusOne(bg, oracle, MinPlusOneOptions{LambdaMin: -1e-3, Bounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Anneal(bg, oracle, AnnealOptions{LambdaMin: -1e-3, Bounds: bounds, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost > TotalBits(g.WRes)+3 {
		t.Errorf("anneal cost %v much worse than greedy %v", a.Cost, TotalBits(g.WRes))
	}
}
