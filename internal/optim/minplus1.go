// Package optim implements the optimisation algorithms the paper plugs
// its kriging evaluator into: the min+1 bit word-length algorithm
// (Algorithms 1 and 2, after Cantin et al. [15]) and the steepest-descent
// noise-budgeting algorithm used for the error-sensitivity benchmark
// (after Parashar et al. [22]), plus an exhaustive search for small
// spaces.
//
// The algorithms are written against the Oracle interface so that the
// same code runs with a plain simulator (to record the Table I reference
// trajectories) or with the kriging-accelerated evaluator.
package optim

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/space"
)

// Oracle evaluates the quality metric λ of a configuration under a
// request context. Every optimiser in this package threads its own
// context through, so a cancelled context (deadline, signal, caller
// shutdown) aborts the whole campaign between — and, with a
// context-aware oracle such as the kriging evaluator, inside —
// simulations. Ctx-oblivious metric functions adapt through OracleFunc.
type Oracle interface {
	Evaluate(ctx context.Context, cfg space.Config) (float64, error)
}

// OracleFunc adapts a plain, context-oblivious function to Oracle; the
// optimisers still cancel between evaluations because they check their
// context at every loop step.
type OracleFunc func(cfg space.Config) (float64, error)

// Evaluate implements Oracle, ignoring the context.
func (f OracleFunc) Evaluate(_ context.Context, cfg space.Config) (float64, error) { return f(cfg) }

// ContextOracleFunc adapts a context-aware function to Oracle.
type ContextOracleFunc func(ctx context.Context, cfg space.Config) (float64, error)

// Evaluate implements Oracle.
func (f ContextOracleFunc) Evaluate(ctx context.Context, cfg space.Config) (float64, error) {
	return f(ctx, cfg)
}

// BatchOracle is an Oracle that can answer several independent queries as
// one batch — the kriging evaluator's EvaluateAll satisfies it through an
// adapter. The min+1 competition (Algorithm 2 lines 4-26) and the max-1
// competition hand the Nv single-bit perturbations of one incumbent to
// EvaluateBatch when the oracle supports it, so the candidate simulations
// run on all cores (and a kriging evaluator can serve the shared-support
// round through one blocked solve). Results
// must be indexed like the input and the batch must be equivalent to
// evaluating the queries one at a time without using one batch member as
// kriging support for another (see evaluator.EvaluateAll).
type BatchOracle interface {
	Oracle
	// EvaluateBatch returns λ for each configuration, indexed like cfgs.
	EvaluateBatch(ctx context.Context, cfgs []space.Config) ([]float64, error)
}

// ErrInfeasible is returned when no configuration within bounds satisfies
// the accuracy constraint.
var ErrInfeasible = errors.New("optim: accuracy constraint unreachable within bounds")

// MinPlusOneOptions parameterises Algorithms 1-2.
type MinPlusOneOptions struct {
	// LambdaMin is the accuracy constraint λm: the result must satisfy
	// λ(w) >= λm.
	LambdaMin float64
	// Bounds gives the word-length range of each variable; Hi plays the
	// paper's Nmax role, Lo its lower stop (the pseudo-code stops at
	// w_i <= 1).
	Bounds space.Bounds
	// MaxIterations caps the greedy phase; zero selects a generous
	// default proportional to the search-space diameter.
	MaxIterations int
}

// MinPlusOneResult reports the two phases of the algorithm.
type MinPlusOneResult struct {
	WMin space.Config // Algorithm 1 output: per-variable minimum word-lengths
	WRes space.Config // Algorithm 2 output: optimised word-length vector
	// Lambda is λ(WRes) as seen by the oracle.
	Lambda float64
	// Evaluations counts oracle calls across both phases.
	Evaluations int
}

// MinPlusOne runs the complete min+1 bit algorithm.
//
// Phase 1 (Algorithm 1) finds, for each variable in isolation (all others
// pinned at Nmax), the smallest word-length that still meets λm; phase 2
// (Algorithm 2) starts from that vector and greedily adds one bit at a
// time to the variable whose increment improves λ the most, until the
// constraint is met.
//
// Two corrections to the paper's pseudo-code (documented in DESIGN.md):
// the competition picks argmax λi rather than argmin (argmin cannot
// converge with λ = -P), and the loop runs until λ >= λm rather than
// λ <= λm (the constraint of Eq. 1 is λ > λmin).
//
// Cancelling ctx aborts the run at the next evaluation boundary (or
// mid-simulation when the oracle is context-aware) with ctx's error.
func MinPlusOne(ctx context.Context, oracle Oracle, opts MinPlusOneOptions) (MinPlusOneResult, error) {
	if err := opts.Bounds.Validate(); err != nil {
		return MinPlusOneResult{}, err
	}
	nv := opts.Bounds.Dim()
	if nv == 0 {
		return MinPlusOneResult{}, errors.New("optim: zero-dimensional bounds")
	}
	res := MinPlusOneResult{}

	wmin, nEval, err := minimumWordlengths(ctx, oracle, opts)
	res.Evaluations += nEval
	if err != nil {
		return res, err
	}
	res.WMin = wmin

	wres, lambda, nEval, err := greedyRefine(ctx, oracle, opts, wmin)
	res.Evaluations += nEval
	if err != nil {
		return res, err
	}
	res.WRes = wres
	res.Lambda = lambda
	return res, nil
}

// minimumWordlengths is Algorithm 1: for each variable i, pin all others
// at Nmax and walk w_i downward until the accuracy constraint breaks;
// the minimum is one step above the break point.
func minimumWordlengths(ctx context.Context, oracle Oracle, opts MinPlusOneOptions) (space.Config, int, error) {
	nv := opts.Bounds.Dim()
	wmin := make(space.Config, nv)
	nEval := 0
	const unset = -1 << 30
	for i := 0; i < nv; i++ {
		w := opts.Bounds.Corner(true) // (Nmax, ..., Nmax)
		lastOK := unset
		for {
			if err := ctx.Err(); err != nil {
				return nil, nEval, err
			}
			lam, err := oracle.Evaluate(ctx, w)
			nEval++
			if err != nil {
				return nil, nEval, fmt.Errorf("optim: phase 1 evaluation of %v: %w", w, err)
			}
			if lam < opts.LambdaMin {
				break
			}
			lastOK = w[i]
			if w[i] <= opts.Bounds.Lo[i] {
				break
			}
			w = w.With(i, w[i]-1)
		}
		if lastOK == unset {
			// Even the all-Nmax configuration fails: no per-variable
			// minimum exists and phase 2 could not converge either.
			return nil, nEval, fmt.Errorf("%w: variable %d fails at Nmax", ErrInfeasible, i)
		}
		wmin[i] = lastOK
	}
	return wmin, nEval, nil
}

// greedyRefine is Algorithm 2: from wmin, repeatedly run a competition
// between the variables — each candidate adds one bit to one variable —
// and commit the winner until the constraint is met.
func greedyRefine(ctx context.Context, oracle Oracle, opts MinPlusOneOptions, wmin space.Config) (space.Config, float64, int, error) {
	nv := opts.Bounds.Dim()
	wres := wmin.Clone()
	nEval := 0

	lam, err := oracle.Evaluate(ctx, wres)
	nEval++
	if err != nil {
		return nil, 0, nEval, fmt.Errorf("optim: phase 2 seed evaluation: %w", err)
	}
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		for i := 0; i < nv; i++ {
			maxIter += opts.Bounds.Hi[i] - opts.Bounds.Lo[i] + 1
		}
		maxIter *= 2
	}
	batch, _ := oracle.(BatchOracle)
	for iter := 0; lam < opts.LambdaMin; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, nEval, err
		}
		if iter >= maxIter {
			return nil, 0, nEval, fmt.Errorf("optim: greedy phase exceeded %d iterations", maxIter)
		}
		// The round's competition: one single-bit increment per variable
		// not yet at Nmax.
		vars := make([]int, 0, nv)
		cands := make([]space.Config, 0, nv)
		for i := 0; i < nv; i++ {
			if wres[i] >= opts.Bounds.Hi[i] {
				continue // already at Nmax
			}
			vars = append(vars, i)
			cands = append(cands, wres.With(i, wres[i]+1))
		}
		if len(vars) == 0 {
			return nil, 0, nEval, ErrInfeasible
		}
		bestVar := -1
		bestLam := 0.0
		if batch != nil && len(cands) > 1 {
			// The candidates are independent by construction, so a
			// batch-capable oracle evaluates the whole competition in
			// parallel; ties keep the lowest variable index, exactly as
			// in the sequential scan.
			lams, err := batch.EvaluateBatch(ctx, cands)
			if err != nil {
				// The run aborts here. How much of the round actually
				// executed depends on the oracle (a snapshot batch is
				// discarded whole; the sequential workers==1 adapter may
				// have committed a prefix), so the failed round is left
				// out of the evaluation count rather than guessed at.
				return nil, 0, nEval, fmt.Errorf("optim: phase 2 batch evaluation: %w", err)
			}
			nEval += len(cands)
			for j, li := range lams {
				if bestVar == -1 || li > bestLam {
					bestVar, bestLam = vars[j], li
				}
			}
		} else {
			for j, w := range cands {
				li, err := oracle.Evaluate(ctx, w)
				nEval++
				if err != nil {
					return nil, 0, nEval, fmt.Errorf("optim: phase 2 evaluation of %v: %w", w, err)
				}
				if bestVar == -1 || li > bestLam {
					bestVar, bestLam = vars[j], li
				}
			}
		}
		wres = wres.With(bestVar, wres[bestVar]+1)
		lam = bestLam
	}
	return wres, lam, nEval, nil
}
