package config

import (
	"fmt"
	"os"
	"time"
)

// Simd is the simd worker-process configuration. Like Config it is
// environment-driven with working defaults: `simd` with no environment
// serves the small FIR simulator on :9090, unauthenticated, one
// simulation at a time.
type Simd struct {
	// Addr is the listen address (SIMD_ADDR, default ":9090").
	Addr string
	// Bench selects the simulator the worker serves — any
	// bench.SpecByName benchmark (SIMD_BENCH, default "fir"). Every
	// worker of one pool must serve the same benchmark.
	Bench string
	// Size is the benchmark size, "small" or "full" (SIMD_SIZE, default
	// "small").
	Size string
	// Seed is the simulator seed (SIMD_SEED, default 1). Workers of one
	// pool must share it: hedged duplicates and requeues assume every
	// worker computes the same λ for the same configuration.
	Seed uint64
	// Key is the API key the worker requires (SIMD_KEY); empty disables
	// authentication — development mode only.
	Key string
	// Capacity bounds concurrent simulations on this worker
	// (SIMD_CAPACITY, default 1 — the model of one exclusive simulator
	// license/core per process).
	Capacity int
	// DrainGrace bounds how long a SIGTERM drain waits for in-flight
	// simulations (SIMD_DRAIN_GRACE, default 30s).
	DrainGrace time.Duration
}

// SimdFromEnv loads the worker configuration from the process
// environment.
func SimdFromEnv() (Simd, error) { return SimdFromGetenv(os.Getenv) }

// SimdFromGetenv loads the worker configuration through an explicit
// lookup function, so tests inject environments without mutating the
// process.
func SimdFromGetenv(getenv func(string) string) (Simd, error) {
	cfg := Simd{
		Addr:       ":9090",
		Bench:      "fir",
		Size:       "small",
		Seed:       1,
		Capacity:   1,
		DrainGrace: 30 * time.Second,
	}
	if v := getenv("SIMD_ADDR"); v != "" {
		cfg.Addr = v
	}
	if v := getenv("SIMD_BENCH"); v != "" {
		cfg.Bench = v
	}
	if v := getenv("SIMD_SIZE"); v != "" {
		if v != "small" && v != "full" {
			return cfg, fmt.Errorf("config: SIMD_SIZE %q (want small or full)", v)
		}
		cfg.Size = v
	}
	var err error
	if cfg.Seed, err = uintVar(getenv, "SIMD_SEED", cfg.Seed); err != nil {
		return cfg, err
	}
	cfg.Key = getenv("SIMD_KEY")
	if cfg.Capacity, err = intVar(getenv, "SIMD_CAPACITY", cfg.Capacity); err != nil {
		return cfg, err
	}
	if cfg.Capacity < 1 {
		return cfg, fmt.Errorf("config: SIMD_CAPACITY %d (want >= 1)", cfg.Capacity)
	}
	if cfg.DrainGrace, err = durVar(getenv, "SIMD_DRAIN_GRACE", cfg.DrainGrace); err != nil {
		return cfg, err
	}
	return cfg, nil
}
