package config

import (
	"strings"
	"testing"
	"time"
)

func TestSimdDefaults(t *testing.T) {
	cfg, err := SimdFromGetenv(env(nil))
	if err != nil {
		t.Fatal(err)
	}
	want := Simd{
		Addr: ":9090", Bench: "fir", Size: "small", Seed: 1,
		Capacity: 1, DrainGrace: 30 * time.Second,
	}
	if cfg != want {
		t.Errorf("defaults = %+v, want %+v", cfg, want)
	}
}

func TestSimdFromGetenv(t *testing.T) {
	cfg, err := SimdFromGetenv(env(map[string]string{
		"SIMD_ADDR":        "127.0.0.1:9999",
		"SIMD_BENCH":       "sleep",
		"SIMD_SIZE":        "full",
		"SIMD_SEED":        "7",
		"SIMD_KEY":         "s3cret",
		"SIMD_CAPACITY":    "4",
		"SIMD_DRAIN_GRACE": "5s",
	}))
	if err != nil {
		t.Fatal(err)
	}
	want := Simd{
		Addr: "127.0.0.1:9999", Bench: "sleep", Size: "full", Seed: 7,
		Key: "s3cret", Capacity: 4, DrainGrace: 5 * time.Second,
	}
	if cfg != want {
		t.Errorf("config = %+v, want %+v", cfg, want)
	}
}

func TestSimdRejects(t *testing.T) {
	cases := []struct {
		name string
		env  map[string]string
		frag string
	}{
		{"bad size", map[string]string{"SIMD_SIZE": "medium"}, "SIMD_SIZE"},
		{"bad seed", map[string]string{"SIMD_SEED": "x"}, "SIMD_SEED"},
		{"zero capacity", map[string]string{"SIMD_CAPACITY": "0"}, "SIMD_CAPACITY"},
		{"bad grace", map[string]string{"SIMD_DRAIN_GRACE": "soon"}, "SIMD_DRAIN_GRACE"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := SimdFromGetenv(env(c.env))
			if err == nil || !strings.Contains(err.Error(), c.frag) {
				t.Fatalf("err = %v, want mention of %s", err, c.frag)
			}
		})
	}
}

func TestSimWorkersFromGetenv(t *testing.T) {
	cfg, err := FromGetenv(env(map[string]string{
		"EVALD_SIM_WORKERS":    "http://sim-a:9090:keyA,http://sim-b:9090",
		"EVALD_SIM_HEDGE":      "50ms",
		"EVALD_SIM_WORKER_CAP": "3",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.SimWorkers) != 2 {
		t.Fatalf("SimWorkers = %+v, want 2 specs", cfg.SimWorkers)
	}
	if cfg.SimWorkers[0].URL != "http://sim-a:9090" || cfg.SimWorkers[0].Key != "keyA" {
		t.Errorf("spec 0 = %+v, want url http://sim-a:9090 key keyA", cfg.SimWorkers[0])
	}
	if cfg.SimWorkers[1].URL != "http://sim-b:9090" || cfg.SimWorkers[1].Key != "" {
		t.Errorf("spec 1 = %+v, want url http://sim-b:9090 no key", cfg.SimWorkers[1])
	}
	if cfg.SimHedge != 50*time.Millisecond || cfg.SimWorkerCap != 3 {
		t.Errorf("hedge/cap = %v/%d, want 50ms/3", cfg.SimHedge, cfg.SimWorkerCap)
	}
}

func TestSimWorkersRejects(t *testing.T) {
	for name, m := range map[string]map[string]string{
		"not a url":    {"EVALD_SIM_WORKERS": "sim-a:9090"},
		"negative cap": {"EVALD_SIM_WORKER_CAP": "-1"},
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := FromGetenv(env(m)); err == nil {
				t.Fatal("want error, got nil")
			}
		})
	}
}
