package config

import (
	"strings"
	"testing"
	"time"
)

func env(m map[string]string) func(string) string {
	return func(k string) string { return m[k] }
}

func TestDefaults(t *testing.T) {
	cfg, err := FromGetenv(env(nil))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Addr != ":8080" || cfg.Bench != "fir" || cfg.Size != "small" || cfg.Seed != 1 {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	if cfg.D != 3 || cfg.NnMin != 1 || cfg.MaxSupport != 10 {
		t.Errorf("unexpected kriging defaults: %+v", cfg)
	}
	if cfg.DrainGrace != 30*time.Second || cfg.RequestTimeout != 60*time.Second {
		t.Errorf("unexpected timeout defaults: %+v", cfg)
	}
	if len(cfg.Tenants) != 0 || cfg.StateDir != "" || cfg.DisableCoalescing {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
}

func TestFromGetenv(t *testing.T) {
	cfg, err := FromGetenv(env(map[string]string{
		"EVALD_ADDR":            "127.0.0.1:9000",
		"EVALD_BENCH":           "iir",
		"EVALD_SIZE":            "full",
		"EVALD_SEED":            "42",
		"EVALD_WORKERS":         "4",
		"EVALD_MAX_SIMS":        "8",
		"EVALD_STATE_DIR":       "/var/lib/evald",
		"EVALD_D":               "4.5",
		"EVALD_NNMIN":           "2",
		"EVALD_MAX_SUPPORT":     "16",
		"EVALD_API_KEYS":        "alice:s3cret:8, bob:hunter2",
		"EVALD_DRAIN_GRACE":     "5s",
		"EVALD_REQUEST_TIMEOUT": "250ms",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Addr != "127.0.0.1:9000" || cfg.Bench != "iir" || cfg.Size != "full" || cfg.Seed != 42 {
		t.Errorf("service identity: %+v", cfg)
	}
	if cfg.Workers != 4 || cfg.MaxSims != 8 || cfg.StateDir != "/var/lib/evald" {
		t.Errorf("capacity/state: %+v", cfg)
	}
	if cfg.D != 4.5 || cfg.NnMin != 2 || cfg.MaxSupport != 16 {
		t.Errorf("kriging knobs: %+v", cfg)
	}
	if cfg.DrainGrace != 5*time.Second || cfg.RequestTimeout != 250*time.Millisecond {
		t.Errorf("timeouts: %+v", cfg)
	}
	want := []Tenant{{Name: "alice", Key: "s3cret", Quota: 8}, {Name: "bob", Key: "hunter2"}}
	if len(cfg.Tenants) != len(want) {
		t.Fatalf("tenants = %+v, want %+v", cfg.Tenants, want)
	}
	for i, w := range want {
		if cfg.Tenants[i] != w {
			t.Errorf("tenant %d = %+v, want %+v", i, cfg.Tenants[i], w)
		}
	}
}

func TestRejects(t *testing.T) {
	cases := []struct {
		name string
		env  map[string]string
		want string // substring of the error
	}{
		{"bad size", map[string]string{"EVALD_SIZE": "huge"}, "EVALD_SIZE"},
		{"bad seed", map[string]string{"EVALD_SEED": "-1"}, "EVALD_SEED"},
		{"bad workers", map[string]string{"EVALD_WORKERS": "many"}, "EVALD_WORKERS"},
		{"negative workers", map[string]string{"EVALD_WORKERS": "-2"}, "negative"},
		{"negative max sims", map[string]string{"EVALD_MAX_SIMS": "-1"}, "negative"},
		{"bad d", map[string]string{"EVALD_D": "wide"}, "EVALD_D"},
		{"bad bool", map[string]string{"EVALD_DISABLE_COALESCING": "sure"}, "EVALD_DISABLE_COALESCING"},
		{"bad grace", map[string]string{"EVALD_DRAIN_GRACE": "5 parsecs"}, "EVALD_DRAIN_GRACE"},
		{"negative timeout", map[string]string{"EVALD_REQUEST_TIMEOUT": "-1s"}, "negative"},
		{"tenant no key", map[string]string{"EVALD_API_KEYS": "alice"}, "name:key"},
		{"tenant empty name", map[string]string{"EVALD_API_KEYS": ":k:1"}, "empty"},
		{"tenant bad quota", map[string]string{"EVALD_API_KEYS": "alice:k:lots"}, "quota"},
		{"tenant negative quota", map[string]string{"EVALD_API_KEYS": "alice:k:-1"}, "quota"},
		{"duplicate tenant", map[string]string{"EVALD_API_KEYS": "a:k1,a:k2"}, "duplicate"},
		{"shared key", map[string]string{"EVALD_API_KEYS": "a:k,b:k"}, "share"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := FromGetenv(env(tc.env))
			if err == nil {
				t.Fatalf("no error for %v", tc.env)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseTenantsEmpty(t *testing.T) {
	for _, s := range []string{"", "  ", ",", " , "} {
		ts, err := ParseTenants(s)
		if err != nil || len(ts) != 0 {
			t.Errorf("ParseTenants(%q) = %v, %v; want empty, nil", s, ts, err)
		}
	}
}

// TestOverloadConfig pins the resilience knobs: the new env vars parse
// into their fields and the defaults stay safe (breaker off, shedding
// on, budget unlimited).
func TestOverloadConfig(t *testing.T) {
	cfg, err := FromGetenv(env(nil))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Breaker || cfg.DisableShedding || cfg.SimRetryBudget != 0 || cfg.SimRetryBurst != 0 {
		t.Errorf("unexpected resilience defaults: %+v", cfg)
	}
	if cfg.BreakerCooldown != 5*time.Second || cfg.BreakerThreshold != 0.5 {
		t.Errorf("unexpected breaker defaults: %+v", cfg)
	}

	cfg, err = FromGetenv(env(map[string]string{
		"EVALD_SIM_RETRY_BUDGET":  "2.5",
		"EVALD_SIM_RETRY_BURST":   "4",
		"EVALD_BREAKER":           "1",
		"EVALD_BREAKER_COOLDOWN":  "10s",
		"EVALD_BREAKER_THRESHOLD": "0.25",
		"EVALD_DISABLE_SHED":      "1",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SimRetryBudget != 2.5 || cfg.SimRetryBurst != 4 {
		t.Errorf("retry budget: %+v", cfg)
	}
	if !cfg.Breaker || cfg.BreakerCooldown != 10*time.Second || cfg.BreakerThreshold != 0.25 {
		t.Errorf("breaker knobs: %+v", cfg)
	}
	if !cfg.DisableShedding {
		t.Errorf("DisableShedding not set: %+v", cfg)
	}
}

// TestOverloadConfigRejects covers validation of the resilience knobs.
func TestOverloadConfigRejects(t *testing.T) {
	cases := []struct {
		name string
		env  map[string]string
		want string
	}{
		{"negative budget", map[string]string{"EVALD_SIM_RETRY_BUDGET": "-1"}, "EVALD_SIM_RETRY_BUDGET"},
		{"bad budget", map[string]string{"EVALD_SIM_RETRY_BUDGET": "lots"}, "EVALD_SIM_RETRY_BUDGET"},
		{"negative burst", map[string]string{"EVALD_SIM_RETRY_BURST": "-2"}, "EVALD_SIM_RETRY_BURST"},
		{"bad breaker bool", map[string]string{"EVALD_BREAKER": "sure"}, "EVALD_BREAKER"},
		{"bad cooldown", map[string]string{"EVALD_BREAKER_COOLDOWN": "5 parsecs"}, "EVALD_BREAKER_COOLDOWN"},
		{"threshold zero", map[string]string{"EVALD_BREAKER_THRESHOLD": "0"}, "EVALD_BREAKER_THRESHOLD"},
		{"threshold high", map[string]string{"EVALD_BREAKER_THRESHOLD": "1.5"}, "EVALD_BREAKER_THRESHOLD"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := FromGetenv(env(tc.env))
			if err == nil {
				t.Fatalf("no error for %v", tc.env)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseTenantsPolicy covers the 4-field tenant grammar: the policy
// field, the empty-quota form, and the rejects around them.
func TestParseTenantsPolicy(t *testing.T) {
	ts, err := ParseTenants("alice:s3cret:8:degraded, bob:hunter2::degraded, carol:k")
	if err != nil {
		t.Fatal(err)
	}
	want := []Tenant{
		{Name: "alice", Key: "s3cret", Quota: 8, AllowDegraded: true},
		{Name: "bob", Key: "hunter2", AllowDegraded: true},
		{Name: "carol", Key: "k"},
	}
	if len(ts) != len(want) {
		t.Fatalf("tenants = %+v, want %+v", ts, want)
	}
	for i, w := range want {
		if ts[i] != w {
			t.Errorf("tenant %d = %+v, want %+v", i, ts[i], w)
		}
	}

	for _, bad := range []struct{ spec, want string }{
		{"alice:k:8:vip", "policy"},
		{"alice:k:8:", "policy"},
		{"alice:k:8:degraded:extra", "name:key"},
	} {
		if _, err := ParseTenants(bad.spec); err == nil {
			t.Errorf("ParseTenants(%q) accepted", bad.spec)
		} else if !strings.Contains(err.Error(), bad.want) {
			t.Errorf("ParseTenants(%q) error %q does not mention %q", bad.spec, err, bad.want)
		}
	}
}
