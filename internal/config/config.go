// Package config loads the evald service configuration from the
// environment. Every knob is an EVALD_-prefixed variable with a sane
// default, so `evald` with no environment at all serves the small FIR
// benchmark on :8080 — and a container deployment configures everything
// without flags or files.
package config

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/simpool"
)

// Tenant is one API-key principal of the service.
type Tenant struct {
	// Name identifies the tenant in request logs and quota errors.
	Name string
	// Key is the API key presented as `Authorization: Bearer <key>` or
	// `X-API-Key: <key>`.
	Key string
	// Quota bounds the tenant's concurrent in-flight requests; zero
	// means unlimited. A request beyond the quota is refused with 429
	// rather than queued, so one tenant cannot occupy the whole
	// admission pipeline.
	Quota int
	// AllowDegraded opts the tenant into brownout serving: under
	// overload (shed) or simulator outage (breaker open) its requests
	// get a surrogate-only kriging answer flagged degraded:true instead
	// of a 503. Set by the 4th policy field of EVALD_API_KEYS.
	AllowDegraded bool
}

// Config is the evald service configuration.
type Config struct {
	// Addr is the listen address (EVALD_ADDR, default ":8080").
	Addr string
	// Bench selects the simulator behind the service: one of the
	// benchmark specs — fir, iir, fft, hevc (EVALD_BENCH, default
	// "fir").
	Bench string
	// Size is the benchmark size, "small" or "full" (EVALD_SIZE,
	// default "small").
	Size string
	// Seed is the simulator seed (EVALD_SEED, default 1).
	Seed uint64
	// Workers bounds the per-request worker pool of /v1/batch
	// (EVALD_WORKERS, default 0 = GOMAXPROCS).
	Workers int
	// MaxSims bounds the simulations in flight across ALL requests —
	// the engine admission semaphore (EVALD_MAX_SIMS, default 0 =
	// unbounded).
	MaxSims int
	// StateDir, when non-empty, makes the support store durable
	// (EVALD_STATE_DIR): simulated results survive restarts via the
	// write-ahead log, so a redeployed service resumes with its cache
	// warm.
	StateDir string
	// D is the kriging neighbourhood radius; 0 disables interpolation
	// (EVALD_D, default 3).
	D float64
	// NnMin is the minimum-neighbour threshold (EVALD_NNMIN, default 1).
	NnMin int
	// MaxSupport caps the kriging support (EVALD_MAX_SUPPORT, default
	// 10).
	MaxSupport int
	// DisableCoalescing turns off single-flight simulation coalescing
	// (EVALD_DISABLE_COALESCING=1) — an ablation/debug switch, not an
	// operating mode.
	DisableCoalescing bool
	// Tenants is the API-key table (EVALD_API_KEYS), parsed from
	// comma-separated name:key[:quota[:policy]] specs, e.g.
	// "alice:s3cret:8,bob:hunter2:0:degraded". The quota part may be
	// omitted or empty (unlimited); the policy field "degraded" opts the
	// tenant into brownout serving. An empty table disables
	// authentication: every request runs as the anonymous tenant —
	// development mode only.
	Tenants []Tenant
	// DrainGrace bounds how long a SIGTERM drain waits for in-flight
	// requests before the server is torn down anyway
	// (EVALD_DRAIN_GRACE, default 30s).
	DrainGrace time.Duration
	// RequestTimeout is the default per-request deadline when the
	// client sends none (EVALD_REQUEST_TIMEOUT, default 60s; 0 means no
	// default deadline).
	RequestTimeout time.Duration
	// SimWorkers, when non-empty, replaces the in-process simulator
	// with the remote worker pool (EVALD_SIM_WORKERS): comma-separated
	// url[:key] specs, e.g.
	// "http://simd1:9090:s3cret,http://simd2:9090:s3cret". The key is
	// taken after the URL's last colon; an all-digit suffix is read as a
	// port, so purely numeric keys are not representable. Empty (the
	// default) keeps simulation in-process — the fast path.
	SimWorkers []simpool.WorkerSpec
	// SimHedge is the pool's straggler hedge delay (EVALD_SIM_HEDGE,
	// default 0 = the pool's built-in 100ms).
	SimHedge time.Duration
	// SimWorkerCap bounds the requests outstanding on one remote worker
	// (EVALD_SIM_WORKER_CAP, default 0 = the pool's built-in 4); match
	// it to the workers' SIMD_CAPACITY.
	SimWorkerCap int
	// SimRetryBudget caps the pool-wide rate of retries and hedges in
	// tokens per second (EVALD_SIM_RETRY_BUDGET, default 0 = unlimited)
	// so correlated worker failures cannot amplify into a retry storm.
	SimRetryBudget float64
	// SimRetryBurst is the retry budget's bucket depth
	// (EVALD_SIM_RETRY_BURST, default 0 = 1); only read when
	// SimRetryBudget is set.
	SimRetryBurst int
	// Breaker enables the circuit breaker around the simulator
	// (EVALD_BREAKER=1, default off): a rolling error window trips it
	// open so a dead simulation tier fails fast instead of burning
	// deadlines, with half-open probes readmitting traffic on recovery.
	Breaker bool
	// BreakerCooldown is how long an open breaker waits before probing
	// (EVALD_BREAKER_COOLDOWN, default 5s).
	BreakerCooldown time.Duration
	// BreakerThreshold is the failure fraction of the rolling window
	// that trips the breaker (EVALD_BREAKER_THRESHOLD, default 0.5).
	BreakerThreshold float64
	// DisableShedding turns off deadline-aware load shedding
	// (EVALD_DISABLE_SHED=1) — an ablation/debug switch: doomed
	// requests then park on the admission queue and expire there.
	DisableShedding bool
}

// FromEnv loads the configuration from the process environment.
func FromEnv() (Config, error) { return FromGetenv(os.Getenv) }

// FromGetenv loads the configuration through an explicit lookup
// function, so tests inject environments without mutating the process.
func FromGetenv(getenv func(string) string) (Config, error) {
	cfg := Config{
		Addr:           ":8080",
		Bench:          "fir",
		Size:           "small",
		Seed:           1,
		D:              3,
		NnMin:          1,
		MaxSupport:     10,
		DrainGrace:     30 * time.Second,
		RequestTimeout: 60 * time.Second,
	}
	if v := getenv("EVALD_ADDR"); v != "" {
		cfg.Addr = v
	}
	if v := getenv("EVALD_BENCH"); v != "" {
		cfg.Bench = v
	}
	if v := getenv("EVALD_SIZE"); v != "" {
		if v != "small" && v != "full" {
			return cfg, fmt.Errorf("config: EVALD_SIZE %q (want small or full)", v)
		}
		cfg.Size = v
	}
	var err error
	if cfg.Seed, err = uintVar(getenv, "EVALD_SEED", cfg.Seed); err != nil {
		return cfg, err
	}
	if cfg.Workers, err = intVar(getenv, "EVALD_WORKERS", cfg.Workers); err != nil {
		return cfg, err
	}
	if cfg.MaxSims, err = intVar(getenv, "EVALD_MAX_SIMS", cfg.MaxSims); err != nil {
		return cfg, err
	}
	cfg.StateDir = getenv("EVALD_STATE_DIR")
	if v := getenv("EVALD_D"); v != "" {
		if cfg.D, err = strconv.ParseFloat(v, 64); err != nil {
			return cfg, fmt.Errorf("config: EVALD_D %q: %w", v, err)
		}
	}
	if cfg.NnMin, err = intVar(getenv, "EVALD_NNMIN", cfg.NnMin); err != nil {
		return cfg, err
	}
	if cfg.MaxSupport, err = intVar(getenv, "EVALD_MAX_SUPPORT", cfg.MaxSupport); err != nil {
		return cfg, err
	}
	if cfg.DisableCoalescing, err = boolVar(getenv, "EVALD_DISABLE_COALESCING"); err != nil {
		return cfg, err
	}
	if cfg.Tenants, err = ParseTenants(getenv("EVALD_API_KEYS")); err != nil {
		return cfg, err
	}
	if cfg.DrainGrace, err = durVar(getenv, "EVALD_DRAIN_GRACE", cfg.DrainGrace); err != nil {
		return cfg, err
	}
	if cfg.RequestTimeout, err = durVar(getenv, "EVALD_REQUEST_TIMEOUT", cfg.RequestTimeout); err != nil {
		return cfg, err
	}
	if v := getenv("EVALD_SIM_WORKERS"); v != "" {
		if cfg.SimWorkers, err = simpool.ParseWorkerSpecs(v); err != nil {
			return cfg, fmt.Errorf("config: EVALD_SIM_WORKERS: %w", err)
		}
	}
	if cfg.SimHedge, err = durVar(getenv, "EVALD_SIM_HEDGE", cfg.SimHedge); err != nil {
		return cfg, err
	}
	if cfg.SimWorkerCap, err = intVar(getenv, "EVALD_SIM_WORKER_CAP", cfg.SimWorkerCap); err != nil {
		return cfg, err
	}
	if cfg.SimRetryBudget, err = floatVar(getenv, "EVALD_SIM_RETRY_BUDGET", cfg.SimRetryBudget); err != nil {
		return cfg, err
	}
	if cfg.SimRetryBurst, err = intVar(getenv, "EVALD_SIM_RETRY_BURST", cfg.SimRetryBurst); err != nil {
		return cfg, err
	}
	if cfg.Breaker, err = boolVar(getenv, "EVALD_BREAKER"); err != nil {
		return cfg, err
	}
	cfg.BreakerCooldown = 5 * time.Second
	if cfg.BreakerCooldown, err = durVar(getenv, "EVALD_BREAKER_COOLDOWN", cfg.BreakerCooldown); err != nil {
		return cfg, err
	}
	cfg.BreakerThreshold = 0.5
	if cfg.BreakerThreshold, err = floatVar(getenv, "EVALD_BREAKER_THRESHOLD", cfg.BreakerThreshold); err != nil {
		return cfg, err
	}
	if cfg.DisableShedding, err = boolVar(getenv, "EVALD_DISABLE_SHED"); err != nil {
		return cfg, err
	}
	if cfg.Workers < 0 {
		return cfg, fmt.Errorf("config: EVALD_WORKERS %d is negative", cfg.Workers)
	}
	if cfg.MaxSims < 0 {
		return cfg, fmt.Errorf("config: EVALD_MAX_SIMS %d is negative", cfg.MaxSims)
	}
	if cfg.SimWorkerCap < 0 {
		return cfg, fmt.Errorf("config: EVALD_SIM_WORKER_CAP %d is negative", cfg.SimWorkerCap)
	}
	if cfg.SimRetryBudget < 0 {
		return cfg, fmt.Errorf("config: EVALD_SIM_RETRY_BUDGET %g is negative", cfg.SimRetryBudget)
	}
	if cfg.SimRetryBurst < 0 {
		return cfg, fmt.Errorf("config: EVALD_SIM_RETRY_BURST %d is negative", cfg.SimRetryBurst)
	}
	if cfg.BreakerThreshold <= 0 || cfg.BreakerThreshold > 1 {
		return cfg, fmt.Errorf("config: EVALD_BREAKER_THRESHOLD %g (want in (0, 1])", cfg.BreakerThreshold)
	}
	return cfg, nil
}

// ParseTenants parses the EVALD_API_KEYS syntax: comma-separated
// name:key[:quota[:policy]] specs. The quota field may be empty
// (unlimited) when a policy follows, and the only policy today is
// "degraded" — the tenant-wide brownout opt-in. Duplicate names or keys
// are rejected — a shared key would make per-tenant quotas and request
// attribution meaningless.
func ParseTenants(s string) ([]Tenant, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []Tenant
	names := map[string]bool{}
	keys := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 2 || len(fields) > 4 {
			return nil, fmt.Errorf("config: tenant %q (want name:key[:quota[:policy]])", part)
		}
		t := Tenant{Name: strings.TrimSpace(fields[0]), Key: strings.TrimSpace(fields[1])}
		if t.Name == "" || t.Key == "" {
			return nil, fmt.Errorf("config: tenant %q has an empty name or key", part)
		}
		if len(fields) >= 3 {
			if q := strings.TrimSpace(fields[2]); q != "" {
				n, err := strconv.Atoi(q)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("config: tenant %q quota %q (want a non-negative integer)", t.Name, fields[2])
				}
				t.Quota = n
			}
		}
		if len(fields) == 4 {
			switch policy := strings.TrimSpace(fields[3]); policy {
			case "degraded":
				t.AllowDegraded = true
			case "":
				// name:key:quota: — a trailing colon reads as a typo, not
				// an intentional empty policy.
				return nil, fmt.Errorf("config: tenant %q has an empty policy field", t.Name)
			default:
				return nil, fmt.Errorf("config: tenant %q policy %q (want \"degraded\")", t.Name, policy)
			}
		}
		if names[t.Name] {
			return nil, fmt.Errorf("config: duplicate tenant name %q", t.Name)
		}
		if keys[t.Key] {
			return nil, fmt.Errorf("config: tenants share the key of %q", t.Name)
		}
		names[t.Name], keys[t.Key] = true, true
		out = append(out, t)
	}
	return out, nil
}

func intVar(getenv func(string) string, name string, def int) (int, error) {
	v := getenv(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def, fmt.Errorf("config: %s %q: %w", name, v, err)
	}
	return n, nil
}

func uintVar(getenv func(string) string, name string, def uint64) (uint64, error) {
	v := getenv(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return def, fmt.Errorf("config: %s %q: %w", name, v, err)
	}
	return n, nil
}

func boolVar(getenv func(string) string, name string) (bool, error) {
	v := getenv(name)
	if v == "" {
		return false, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("config: %s %q: %w", name, v, err)
	}
	return b, nil
}

func floatVar(getenv func(string) string, name string, def float64) (float64, error) {
	v := getenv(name)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return def, fmt.Errorf("config: %s %q: %w", name, v, err)
	}
	return f, nil
}

func durVar(getenv func(string) string, name string, def time.Duration) (time.Duration, error) {
	v := getenv(name)
	if v == "" {
		return def, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return def, fmt.Errorf("config: %s %q: %w", name, v, err)
	}
	if d < 0 {
		return def, fmt.Errorf("config: %s %q is negative", name, v)
	}
	return d, nil
}
