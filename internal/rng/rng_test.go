package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with the same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds matched %d/100 outputs", same)
	}
}

func TestNamedStreamsIndependent(t *testing.T) {
	a := NewNamed(7, "fir")
	b := NewNamed(7, "fft")
	c := NewNamed(7, "fir")
	if a.Uint64() == b.Uint64() {
		t.Error("differently-named streams produced identical first outputs")
	}
	a2 := NewNamed(7, "fir")
	_ = c
	if a2.Uint64() != NewNamed(7, "fir").Uint64() {
		t.Error("same-named stream is not reproducible")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
	variance := sumSq/n - mean*mean
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Errorf("uniform variance = %v, want ~%v", variance, 1.0/12)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) returned %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("Intn(7) bucket %d has %d hits, want ~10000", i, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("IntRange(3,5) returned %d", v)
		}
	}
	if got := r.IntRange(4, 4); got != 4 {
		t.Errorf("IntRange(4,4) = %d", got)
	}
}

func TestIntRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntRange(5,3) did not panic")
		}
	}()
	New(1).IntRange(5, 3)
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	variance := sumSq/n - mean*mean
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestNormScaled(t *testing.T) {
	r := New(17)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormScaled(5, 2)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.05 {
		t.Errorf("NormScaled mean = %v, want ~5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(29)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("shuffle duplicated %d: %v", v, xs)
		}
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestPropertyIntnAlwaysInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertySameSeedSameSequence(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 20; i++ {
			if a.Float64() != b.Float64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
