// Package space models the Nv-dimensional configuration hypercube the
// paper's optimisation algorithms travel through.
//
// A configuration is an integer vector e = (e_0, ..., e_{Nv-1}) of
// approximation knobs: word-lengths for the fixed-point benchmarks or
// error-power indices for the sensitivity-analysis benchmark. The paper
// measures proximity between configurations with the L1 norm (Algorithms
// 1-2, line 9); L2 and L∞ are provided as well for the ablation benches.
package space

import (
	"fmt"
	"math"
	"strings"
)

// Config is an immutable-by-convention integer configuration vector.
type Config []int

// Clone returns an independent copy of c.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	copy(out, c)
	return out
}

// Equal reports whether c and o are the same vector.
func (c Config) Equal(o Config) bool {
	if len(c) != len(o) {
		return false
	}
	for i, v := range c {
		if v != o[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string key for use in maps.
func (c Config) Key() string {
	var b strings.Builder
	for i, v := range c {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// String renders the configuration as e.g. "(8,12,10)".
func (c Config) String() string { return "(" + c.Key() + ")" }

// Floats converts the configuration to a float64 slice, the coordinate
// form consumed by the kriging interpolator.
func (c Config) Floats() []float64 {
	out := make([]float64, len(c))
	for i, v := range c {
		out[i] = float64(v)
	}
	return out
}

// With returns a copy of c with dimension i set to v.
func (c Config) With(i, v int) Config {
	out := c.Clone()
	out[i] = v
	return out
}

// The distance kernels below are unrolled four-wide with paired
// accumulators: the lattice index evaluates them against every candidate
// in a shell sweep (store NeighborsInto/NearestKInto), so they are among
// the hottest scalar loops in the system. Integer sums are exact under
// reordering, and the float accumulators pair up the same way in every
// call, so results are deterministic and identical across call sites.

// L1 returns the L1 (Manhattan) distance between two configurations,
// the distance used by the paper (||w - w_sim||_1).
func L1(a, b Config) int {
	n := len(a)
	if n != len(b) {
		panic("space: L1 on configs of different dimension")
	}
	b = b[:n]
	var s0, s1 int
	i := 0
	for ; i+3 < n; i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		if d0 < 0 {
			d0 = -d0
		}
		if d1 < 0 {
			d1 = -d1
		}
		if d2 < 0 {
			d2 = -d2
		}
		if d3 < 0 {
			d3 = -d3
		}
		s0 += d0 + d2
		s1 += d1 + d3
	}
	for ; i < n; i++ {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		s0 += d
	}
	return s0 + s1
}

// L2 returns the Euclidean distance between two configurations.
func L2(a, b Config) float64 {
	n := len(a)
	if n != len(b) {
		panic("space: L2 on configs of different dimension")
	}
	b = b[:n]
	var s0, s1 float64
	i := 0
	for ; i+1 < n; i += 2 {
		d0 := float64(a[i] - b[i])
		d1 := float64(a[i+1] - b[i+1])
		s0 += d0 * d0
		s1 += d1 * d1
	}
	if i < n {
		d := float64(a[i] - b[i])
		s0 += d * d
	}
	return math.Sqrt(s0 + s1)
}

// LInf returns the Chebyshev distance between two configurations.
func LInf(a, b Config) int {
	n := len(a)
	if n != len(b) {
		panic("space: LInf on configs of different dimension")
	}
	b = b[:n]
	var m0, m1 int
	i := 0
	for ; i+3 < n; i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		if d0 < 0 {
			d0 = -d0
		}
		if d1 < 0 {
			d1 = -d1
		}
		if d2 < 0 {
			d2 = -d2
		}
		if d3 < 0 {
			d3 = -d3
		}
		if d2 > d0 {
			d0 = d2
		}
		if d3 > d1 {
			d1 = d3
		}
		if d0 > m0 {
			m0 = d0
		}
		if d1 > m1 {
			m1 = d1
		}
	}
	for ; i < n; i++ {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m0 {
			m0 = d
		}
	}
	if m1 > m0 {
		return m1
	}
	return m0
}

// Metric identifies a distance function on the configuration hypercube.
type Metric int

// Supported metrics. MetricL1 is the paper's choice.
const (
	MetricL1 Metric = iota
	MetricL2
	MetricLInf
)

// String returns the metric name.
func (m Metric) String() string {
	switch m {
	case MetricL1:
		return "L1"
	case MetricL2:
		return "L2"
	case MetricLInf:
		return "Linf"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Distance evaluates the metric between two configurations as a float64
// (integral metrics are widened).
func (m Metric) Distance(a, b Config) float64 {
	switch m {
	case MetricL1:
		return float64(L1(a, b))
	case MetricL2:
		return L2(a, b)
	case MetricLInf:
		return float64(LInf(a, b))
	default:
		panic("space: unknown metric")
	}
}

// DistanceFloats evaluates the metric between float coordinate vectors;
// kriging works in this continuous view of the hypercube.
func (m Metric) DistanceFloats(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("space: distance on vectors of different dimension")
	}
	n := len(a)
	b = b[:n]
	switch m {
	case MetricL1:
		var s0, s1 float64
		i := 0
		for ; i+1 < n; i += 2 {
			s0 += math.Abs(a[i] - b[i])
			s1 += math.Abs(a[i+1] - b[i+1])
		}
		if i < n {
			s0 += math.Abs(a[i] - b[i])
		}
		return s0 + s1
	case MetricL2:
		var s0, s1 float64
		i := 0
		for ; i+1 < n; i += 2 {
			d0 := a[i] - b[i]
			d1 := a[i+1] - b[i+1]
			s0 += d0 * d0
			s1 += d1 * d1
		}
		if i < n {
			d := a[i] - b[i]
			s0 += d * d
		}
		return math.Sqrt(s0 + s1)
	case MetricLInf:
		var m0, m1 float64
		i := 0
		for ; i+1 < n; i += 2 {
			if d := math.Abs(a[i] - b[i]); d > m0 {
				m0 = d
			}
			if d := math.Abs(a[i+1] - b[i+1]); d > m1 {
				m1 = d
			}
		}
		if i < n {
			if d := math.Abs(a[i] - b[i]); d > m0 {
				m0 = d
			}
		}
		if m1 > m0 {
			return m1
		}
		return m0
	default:
		panic("space: unknown metric")
	}
}
