// Package space models the Nv-dimensional configuration hypercube the
// paper's optimisation algorithms travel through.
//
// A configuration is an integer vector e = (e_0, ..., e_{Nv-1}) of
// approximation knobs: word-lengths for the fixed-point benchmarks or
// error-power indices for the sensitivity-analysis benchmark. The paper
// measures proximity between configurations with the L1 norm (Algorithms
// 1-2, line 9); L2 and L∞ are provided as well for the ablation benches.
package space

import (
	"fmt"
	"math"
	"strings"
)

// Config is an immutable-by-convention integer configuration vector.
type Config []int

// Clone returns an independent copy of c.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	copy(out, c)
	return out
}

// Equal reports whether c and o are the same vector.
func (c Config) Equal(o Config) bool {
	if len(c) != len(o) {
		return false
	}
	for i, v := range c {
		if v != o[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string key for use in maps.
func (c Config) Key() string {
	var b strings.Builder
	for i, v := range c {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// String renders the configuration as e.g. "(8,12,10)".
func (c Config) String() string { return "(" + c.Key() + ")" }

// Floats converts the configuration to a float64 slice, the coordinate
// form consumed by the kriging interpolator.
func (c Config) Floats() []float64 {
	out := make([]float64, len(c))
	for i, v := range c {
		out[i] = float64(v)
	}
	return out
}

// With returns a copy of c with dimension i set to v.
func (c Config) With(i, v int) Config {
	out := c.Clone()
	out[i] = v
	return out
}

// L1 returns the L1 (Manhattan) distance between two configurations,
// the distance used by the paper (||w - w_sim||_1).
func L1(a, b Config) int {
	if len(a) != len(b) {
		panic("space: L1 on configs of different dimension")
	}
	d := 0
	for i, v := range a {
		if v > b[i] {
			d += v - b[i]
		} else {
			d += b[i] - v
		}
	}
	return d
}

// L2 returns the Euclidean distance between two configurations.
func L2(a, b Config) float64 {
	if len(a) != len(b) {
		panic("space: L2 on configs of different dimension")
	}
	var s float64
	for i, v := range a {
		dv := float64(v - b[i])
		s += dv * dv
	}
	return math.Sqrt(s)
}

// LInf returns the Chebyshev distance between two configurations.
func LInf(a, b Config) int {
	if len(a) != len(b) {
		panic("space: LInf on configs of different dimension")
	}
	m := 0
	for i, v := range a {
		d := v - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// Metric identifies a distance function on the configuration hypercube.
type Metric int

// Supported metrics. MetricL1 is the paper's choice.
const (
	MetricL1 Metric = iota
	MetricL2
	MetricLInf
)

// String returns the metric name.
func (m Metric) String() string {
	switch m {
	case MetricL1:
		return "L1"
	case MetricL2:
		return "L2"
	case MetricLInf:
		return "Linf"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Distance evaluates the metric between two configurations as a float64
// (integral metrics are widened).
func (m Metric) Distance(a, b Config) float64 {
	switch m {
	case MetricL1:
		return float64(L1(a, b))
	case MetricL2:
		return L2(a, b)
	case MetricLInf:
		return float64(LInf(a, b))
	default:
		panic("space: unknown metric")
	}
}

// DistanceFloats evaluates the metric between float coordinate vectors;
// kriging works in this continuous view of the hypercube.
func (m Metric) DistanceFloats(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("space: distance on vectors of different dimension")
	}
	switch m {
	case MetricL1:
		var s float64
		for i, v := range a {
			s += math.Abs(v - b[i])
		}
		return s
	case MetricL2:
		var s float64
		for i, v := range a {
			d := v - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	case MetricLInf:
		var mx float64
		for i, v := range a {
			if d := math.Abs(v - b[i]); d > mx {
				mx = d
			}
		}
		return mx
	default:
		panic("space: unknown metric")
	}
}
