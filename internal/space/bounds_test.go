package space

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestUniformBounds(t *testing.T) {
	b := UniformBounds(3, 2, 16)
	if b.Dim() != 3 {
		t.Fatalf("Dim = %d", b.Dim())
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if b.Lo[i] != 2 || b.Hi[i] != 16 {
			t.Fatal("wrong bounds")
		}
	}
}

func TestValidateRejectsInverted(t *testing.T) {
	b := Bounds{Lo: []int{5}, Hi: []int{3}}
	if b.Validate() == nil {
		t.Error("inverted bounds validated")
	}
	b2 := Bounds{Lo: []int{1, 2}, Hi: []int{3}}
	if b2.Validate() == nil {
		t.Error("mismatched bounds validated")
	}
}

func TestContainsClamp(t *testing.T) {
	b := UniformBounds(2, 0, 10)
	if !b.Contains(Config{0, 10}) {
		t.Error("corner not contained")
	}
	if b.Contains(Config{-1, 5}) || b.Contains(Config{5, 11}) {
		t.Error("out-of-box contained")
	}
	if b.Contains(Config{5}) {
		t.Error("wrong-dimension config contained")
	}
	c := b.Clamp(Config{-5, 20})
	if c[0] != 0 || c[1] != 10 {
		t.Errorf("Clamp = %v", c)
	}
}

func TestCorner(t *testing.T) {
	b := UniformBounds(2, 3, 9)
	lo, hi := b.Corner(false), b.Corner(true)
	if lo[0] != 3 || lo[1] != 3 || hi[0] != 9 || hi[1] != 9 {
		t.Errorf("corners %v %v", lo, hi)
	}
}

func TestSize(t *testing.T) {
	if UniformBounds(2, 1, 3).Size() != 9 {
		t.Error("Size wrong for 3x3")
	}
	if UniformBounds(0, 0, 0).Size() != 1 {
		t.Error("Size of zero-dim should be 1 (the empty config)")
	}
	// Saturation for enormous spaces.
	if UniformBounds(23, 2, 14).Size() <= 0 {
		t.Error("Size overflowed")
	}
}

func TestEnumerateCountsAndOrder(t *testing.T) {
	b := UniformBounds(2, 0, 2)
	var got []string
	b.Enumerate(func(c Config) bool {
		got = append(got, c.Key())
		return true
	})
	if len(got) != 9 {
		t.Fatalf("enumerated %d configs, want 9", len(got))
	}
	if got[0] != "0,0" || got[1] != "0,1" || got[8] != "2,2" {
		t.Errorf("lexicographic order violated: %v", got)
	}
	// No duplicates.
	seen := map[string]bool{}
	for _, k := range got {
		if seen[k] {
			t.Fatalf("duplicate %s", k)
		}
		seen[k] = true
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	b := UniformBounds(2, 0, 4)
	n := 0
	b.Enumerate(func(Config) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestBallL1MatchesBruteForce(t *testing.T) {
	b := UniformBounds(3, 0, 6)
	center := Config{3, 1, 5}
	for _, radius := range []int{0, 1, 2, 4} {
		want := map[string]bool{}
		b.Enumerate(func(c Config) bool {
			if L1(c, center) <= radius && !c.Equal(center) {
				want[c.Key()] = true
			}
			return true
		})
		got := map[string]bool{}
		b.BallL1(center, radius, false, func(c Config) bool {
			if got[c.Key()] {
				t.Fatalf("BallL1 visited %s twice", c.Key())
			}
			got[c.Key()] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("radius %d: got %d points, want %d", radius, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("radius %d: missing %s", radius, k)
			}
		}
	}
}

func TestBallL1IncludeCenter(t *testing.T) {
	b := UniformBounds(2, 0, 4)
	center := Config{2, 2}
	n := 0
	sawCenter := false
	b.BallL1(center, 1, true, func(c Config) bool {
		n++
		if c.Equal(center) {
			sawCenter = true
		}
		return true
	})
	if !sawCenter {
		t.Error("center missing with includeCenter")
	}
	if n != 5 {
		t.Errorf("ball of radius 1 in 2D has %d points, want 5", n)
	}
}

func TestBallL1EarlyStop(t *testing.T) {
	b := UniformBounds(2, 0, 9)
	n := 0
	b.BallL1(Config{5, 5}, 3, false, func(Config) bool {
		n++
		return n < 4
	})
	if n != 4 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestPropertyBallWithinRadiusAndBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nv := 1 + r.Intn(4)
		b := UniformBounds(nv, 0, 8)
		center := make(Config, nv)
		for i := range center {
			center[i] = r.IntRange(0, 8)
		}
		radius := r.Intn(5)
		ok := true
		b.BallL1(center, radius, false, func(c Config) bool {
			if L1(c, center) > radius || !b.Contains(c) || c.Equal(center) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEnumerateVisitsSizePoints(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nv := 1 + r.Intn(3)
		lo := r.IntRange(-3, 3)
		hi := lo + r.Intn(4)
		b := UniformBounds(nv, lo, hi)
		n := 0
		b.Enumerate(func(Config) bool { n++; return true })
		return n == b.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
