package space

import "fmt"

// Bounds describes the axis-aligned box [Lo_i, Hi_i] containing the valid
// configurations of a benchmark, e.g. word-lengths in [2, 16].
type Bounds struct {
	Lo, Hi []int
}

// UniformBounds builds bounds with the same [lo, hi] range on every one of
// the nv dimensions.
func UniformBounds(nv, lo, hi int) Bounds {
	b := Bounds{Lo: make([]int, nv), Hi: make([]int, nv)}
	for i := 0; i < nv; i++ {
		b.Lo[i], b.Hi[i] = lo, hi
	}
	return b
}

// Dim returns the number of dimensions.
func (b Bounds) Dim() int { return len(b.Lo) }

// Validate checks internal consistency.
func (b Bounds) Validate() error {
	if len(b.Lo) != len(b.Hi) {
		return fmt.Errorf("space: bounds Lo/Hi length mismatch (%d vs %d)", len(b.Lo), len(b.Hi))
	}
	for i := range b.Lo {
		if b.Lo[i] > b.Hi[i] {
			return fmt.Errorf("space: bounds dimension %d has Lo %d > Hi %d", i, b.Lo[i], b.Hi[i])
		}
	}
	return nil
}

// Contains reports whether c lies within the box.
func (b Bounds) Contains(c Config) bool {
	if len(c) != len(b.Lo) {
		return false
	}
	for i, v := range c {
		if v < b.Lo[i] || v > b.Hi[i] {
			return false
		}
	}
	return true
}

// Clamp returns a copy of c with every coordinate clipped into the box.
func (b Bounds) Clamp(c Config) Config {
	out := c.Clone()
	for i := range out {
		if out[i] < b.Lo[i] {
			out[i] = b.Lo[i]
		}
		if out[i] > b.Hi[i] {
			out[i] = b.Hi[i]
		}
	}
	return out
}

// Corner returns the configuration at the low (false) or high (true)
// corner of the box.
func (b Bounds) Corner(high bool) Config {
	c := make(Config, b.Dim())
	for i := range c {
		if high {
			c[i] = b.Hi[i]
		} else {
			c[i] = b.Lo[i]
		}
	}
	return c
}

// Size returns the number of lattice points inside the box. It saturates
// at the maximum int value for enormous spaces.
func (b Bounds) Size() int {
	n := 1
	for i := range b.Lo {
		w := b.Hi[i] - b.Lo[i] + 1
		if n > (1<<62)/w {
			return 1 << 62
		}
		n *= w
	}
	return n
}

// Enumerate calls fn for every lattice point of the box in lexicographic
// order, stopping early if fn returns false. The Config passed to fn is
// reused between calls; clone it to retain it.
func (b Bounds) Enumerate(fn func(Config) bool) {
	nv := b.Dim()
	if nv == 0 {
		return
	}
	cur := b.Corner(false)
	for {
		if !fn(cur) {
			return
		}
		// Odometer increment.
		i := nv - 1
		for i >= 0 {
			cur[i]++
			if cur[i] <= b.Hi[i] {
				break
			}
			cur[i] = b.Lo[i]
			i--
		}
		if i < 0 {
			return
		}
	}
}

// BallL1 calls fn for every in-bounds lattice point at L1 distance exactly
// <= radius from center (excluding the center itself when includeCenter is
// false). The Config passed to fn is reused; clone to retain.
func (b Bounds) BallL1(center Config, radius int, includeCenter bool, fn func(Config) bool) {
	nv := b.Dim()
	cur := center.Clone()
	var rec func(dim, remaining int) bool
	rec = func(dim, remaining int) bool {
		if dim == nv {
			if !includeCenter && cur.Equal(center) {
				return true
			}
			return fn(cur)
		}
		lo := center[dim] - remaining
		hi := center[dim] + remaining
		if lo < b.Lo[dim] {
			lo = b.Lo[dim]
		}
		if hi > b.Hi[dim] {
			hi = b.Hi[dim]
		}
		for v := lo; v <= hi; v++ {
			cur[dim] = v
			used := v - center[dim]
			if used < 0 {
				used = -used
			}
			if !rec(dim+1, remaining-used) {
				return false
			}
		}
		cur[dim] = center[dim]
		return true
	}
	rec(0, radius)
}
