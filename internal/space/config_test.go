package space

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestCloneIndependence(t *testing.T) {
	c := Config{1, 2, 3}
	d := c.Clone()
	d[0] = 99
	if c[0] == 99 {
		t.Fatal("Clone shares storage")
	}
}

func TestEqual(t *testing.T) {
	if !(Config{1, 2}).Equal(Config{1, 2}) {
		t.Error("equal configs not equal")
	}
	if (Config{1, 2}).Equal(Config{1, 3}) {
		t.Error("different configs equal")
	}
	if (Config{1, 2}).Equal(Config{1, 2, 3}) {
		t.Error("different lengths equal")
	}
}

func TestKeyString(t *testing.T) {
	c := Config{4, -1, 7}
	if c.Key() != "4,-1,7" {
		t.Errorf("Key = %q", c.Key())
	}
	if c.String() != "(4,-1,7)" {
		t.Errorf("String = %q", c.String())
	}
}

func TestKeyInjectiveOnExamples(t *testing.T) {
	// Keys must distinguish (1, 23) from (12, 3).
	if (Config{1, 23}).Key() == (Config{12, 3}).Key() {
		t.Fatal("Key collision")
	}
}

func TestFloats(t *testing.T) {
	f := (Config{2, 5}).Floats()
	if f[0] != 2.0 || f[1] != 5.0 {
		t.Errorf("Floats = %v", f)
	}
}

func TestWith(t *testing.T) {
	c := Config{1, 2, 3}
	d := c.With(1, 9)
	if d[1] != 9 || c[1] != 2 {
		t.Errorf("With mutated original or missed: c=%v d=%v", c, d)
	}
}

func TestL1Known(t *testing.T) {
	if L1(Config{1, 2, 3}, Config{3, 2, 0}) != 5 {
		t.Error("L1 wrong")
	}
	if L1(Config{}, Config{}) != 0 {
		t.Error("L1 of empty configs should be 0")
	}
}

func TestL2Known(t *testing.T) {
	if d := L2(Config{0, 0}, Config{3, 4}); d != 5 {
		t.Errorf("L2 = %v, want 5", d)
	}
}

func TestLInfKnown(t *testing.T) {
	if LInf(Config{1, 10}, Config{3, 2}) != 8 {
		t.Error("LInf wrong")
	}
}

func TestDistancePanicsOnDimMismatch(t *testing.T) {
	for name, fn := range map[string]func(){
		"L1":   func() { L1(Config{1}, Config{1, 2}) },
		"L2":   func() { L2(Config{1}, Config{1, 2}) },
		"LInf": func() { LInf(Config{1}, Config{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s dimension mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMetricString(t *testing.T) {
	if MetricL1.String() != "L1" || MetricL2.String() != "L2" || MetricLInf.String() != "Linf" {
		t.Error("metric names wrong")
	}
}

func TestMetricDistanceAgreesWithFunctions(t *testing.T) {
	a, b := Config{1, 5, 2}, Config{4, 5, 0}
	if MetricL1.Distance(a, b) != float64(L1(a, b)) {
		t.Error("MetricL1 disagrees with L1")
	}
	if MetricL2.Distance(a, b) != L2(a, b) {
		t.Error("MetricL2 disagrees with L2")
	}
	if MetricLInf.Distance(a, b) != float64(LInf(a, b)) {
		t.Error("MetricLInf disagrees with LInf")
	}
}

func TestDistanceFloatsAgreesWithInts(t *testing.T) {
	a, b := Config{1, 5, 2}, Config{4, 5, 0}
	for _, m := range []Metric{MetricL1, MetricL2, MetricLInf} {
		if m.Distance(a, b) != m.DistanceFloats(a.Floats(), b.Floats()) {
			t.Errorf("%s float/int distance mismatch", m)
		}
	}
}

func randConfig(r *rng.Stream, n int) Config {
	c := make(Config, n)
	for i := range c {
		c[i] = r.IntRange(-20, 20)
	}
	return c
}

func TestPropertyMetricAxioms(t *testing.T) {
	// Symmetry, identity and the triangle inequality for all metrics.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(6)
		a, b, c := randConfig(r, n), randConfig(r, n), randConfig(r, n)
		for _, m := range []Metric{MetricL1, MetricL2, MetricLInf} {
			dab, dba := m.Distance(a, b), m.Distance(b, a)
			if dab != dba {
				return false
			}
			if m.Distance(a, a) != 0 {
				return false
			}
			if m.Distance(a, c) > m.Distance(a, b)+m.Distance(b, c)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyNormOrdering(t *testing.T) {
	// LInf <= L2 <= L1 on integer lattices.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(6)
		a, b := randConfig(r, n), randConfig(r, n)
		linf := MetricLInf.Distance(a, b)
		l2 := MetricL2.Distance(a, b)
		l1 := MetricL1.Distance(a, b)
		return linf <= l2+1e-12 && l2 <= l1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
