package space

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// TestUnrolledMetricsMatchSerialReference pins the 4-wide unrolled
// distance kernels against the obvious serial loops across dimensions
// that cover every remainder shape. The integer metrics must match
// exactly (integer sums are order-independent); the float metrics must
// match to reassociation tolerance and be deterministic across repeated
// calls.
func TestUnrolledMetricsMatchSerialReference(t *testing.T) {
	r := rng.New(29)
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 33} {
		for trial := 0; trial < 50; trial++ {
			a := make(Config, n)
			b := make(Config, n)
			af := make([]float64, n)
			bf := make([]float64, n)
			for i := 0; i < n; i++ {
				a[i] = r.Intn(64) - 32
				b[i] = r.Intn(64) - 32
				af[i] = r.NormScaled(0, 10)
				bf[i] = r.NormScaled(0, 10)
			}

			var l1 int
			for i := range a {
				d := a[i] - b[i]
				if d < 0 {
					d = -d
				}
				l1 += d
			}
			if got := L1(a, b); got != l1 {
				t.Fatalf("n=%d: L1 = %d, want %d", n, got, l1)
			}

			var l2 float64
			for i := range a {
				d := float64(a[i] - b[i])
				l2 += d * d
			}
			l2 = math.Sqrt(l2)
			if got := L2(a, b); math.Abs(got-l2) > 1e-12*(1+l2) {
				t.Fatalf("n=%d: L2 = %v, want %v", n, got, l2)
			}

			linf := 0
			for i := range a {
				d := a[i] - b[i]
				if d < 0 {
					d = -d
				}
				if d > linf {
					linf = d
				}
			}
			if got := LInf(a, b); got != linf {
				t.Fatalf("n=%d: LInf = %d, want %d", n, got, linf)
			}

			for _, m := range []Metric{MetricL1, MetricL2, MetricLInf} {
				// Widened integer form agrees with the int kernels.
				got := m.Distance(a, b)
				switch m {
				case MetricL1:
					if got != float64(l1) {
						t.Fatalf("n=%d: Distance L1 = %v, want %d", n, got, l1)
					}
				case MetricL2:
					if got != L2(a, b) {
						t.Fatalf("n=%d: Distance L2 = %v, want %v", n, got, L2(a, b))
					}
				case MetricLInf:
					if got != float64(linf) {
						t.Fatalf("n=%d: Distance LInf = %v, want %d", n, got, linf)
					}
				}

				// Float form: serial reference within tolerance, bitwise
				// deterministic across calls.
				var ref float64
				switch m {
				case MetricL1:
					for i := range af {
						ref += math.Abs(af[i] - bf[i])
					}
				case MetricL2:
					var s float64
					for i := range af {
						d := af[i] - bf[i]
						s += d * d
					}
					ref = math.Sqrt(s)
				case MetricLInf:
					for i := range af {
						if d := math.Abs(af[i] - bf[i]); d > ref {
							ref = d
						}
					}
				}
				gf := m.DistanceFloats(af, bf)
				if math.Abs(gf-ref) > 1e-12*(1+ref) {
					t.Fatalf("n=%d %v: DistanceFloats = %v, want %v", n, m, gf, ref)
				}
				if again := m.DistanceFloats(af, bf); again != gf {
					t.Fatalf("n=%d %v: DistanceFloats not deterministic", n, m)
				}
				// Metric axioms the lattice index relies on.
				if gf < 0 || m.DistanceFloats(af, af) != 0 {
					t.Fatalf("n=%d %v: axiom violation", n, m)
				}
				if m.DistanceFloats(bf, af) != gf {
					t.Fatalf("n=%d %v: not symmetric", n, m)
				}
			}
		}
	}
}
