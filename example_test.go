package repro_test

import (
	"fmt"
	"math"

	"repro"
	"repro/internal/evaluator"
	"repro/internal/optim"
	"repro/internal/space"
)

// Example shows the minimal kriging-evaluator flow: wrap a simulator,
// walk a path through the hypercube, and watch the evaluator switch from
// simulation to interpolation once the store is warm.
func Example() {
	sim := repro.SimulatorFunc{NumVars: 1, Fn: func(cfg repro.Config) (float64, error) {
		return -math.Exp2(-float64(cfg[0])), nil
	}}
	ev, _ := repro.NewEvaluator(sim, repro.EvaluatorOptions{D: 2, NnMin: 1})
	for w := 4; w <= 8; w++ {
		res, _ := ev.Evaluate(space.Config{w})
		fmt.Printf("w=%d %s\n", w, res.Source)
	}
	// Output:
	// w=4 simulated
	// w=5 simulated
	// w=6 interpolated
	// w=7 simulated
	// w=8 simulated
}

// ExampleMinPlusOne runs the paper's word-length optimiser on an
// analytic accuracy model.
func ExampleMinPlusOne() {
	oracle := optim.OracleFunc(func(cfg space.Config) (float64, error) {
		var p float64
		for _, w := range cfg {
			p += math.Exp2(-2 * float64(w))
		}
		return -p, nil
	})
	res, _ := repro.MinPlusOne(oracle, optim.MinPlusOneOptions{
		LambdaMin: -1e-4,
		Bounds:    space.UniformBounds(2, 2, 16),
	})
	fmt.Println("wres:", res.WRes)
	// Output:
	// wres: (8,7)
}

// ExampleReplay demonstrates the Table I replay protocol on a recorded
// trajectory.
func ExampleReplay() {
	var trace repro.Trace
	for k := 9; k >= 0; k-- {
		trace = append(trace, evaluator.TracePoint{
			Config: space.Config{k},
			Lambda: float64(2 * k),
		})
	}
	row, _ := repro.Replay(trace, repro.EvaluatorOptions{
		D: 2, NnMin: 1,
		Interp: &repro.OrdinaryKriging{},
	}, evaluator.ErrorRelative)
	fmt.Printf("N=%d interpolated=%d\n", row.N, row.NInterp)
	// Output:
	// N=10 interpolated=3
}
