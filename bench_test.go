package repro

// bench_test.go regenerates every table and figure of the paper's
// evaluation as Go benchmarks:
//
//	BenchmarkTable1FIR / IIR / FFT / HEVC / SqueezeNet — the five blocks
//	  of Table I (p%, j̄, max ε, µε at d = 2..5), printed via b.Log.
//	BenchmarkFigure1Surface — the FIR noise-power surface of Figure 1.
//	BenchmarkSpeedupModel — the Eq. 2 total-optimisation-time model.
//	BenchmarkAblation* — the Nn,min / variogram / interpolator studies.
//	Benchmark{KrigingPredict, FIRSimulation, ...} — the microbenchmarks
//	  behind t_i and t_o in Eq. 2.
//
// Trace recording (the expensive, simulation-only part) happens once per
// benchmark outside the timed region; the timed region is the kriging
// replay itself.

import (
	"context"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/evaluator"
	"repro/internal/hevc"
	"repro/internal/kriging"
	"repro/internal/nn"
	"repro/internal/signal"
	"repro/internal/space"
	"repro/internal/variogram"
)

var (
	traceMu    sync.Mutex
	traceCache = map[string]*bench.BenchmarkResult{}
)

// recordedResult records (once) and replays the named benchmark.
func recordedResult(b *testing.B, name string) (*bench.Spec, *bench.BenchmarkResult) {
	b.Helper()
	traceMu.Lock()
	defer traceMu.Unlock()
	sp, err := bench.SpecByName(name, bench.Small)
	if err != nil {
		b.Fatal(err)
	}
	if res, ok := traceCache[name]; ok {
		return sp, res
	}
	res, err := bench.RunBenchmark(context.Background(), sp, bench.Table1Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	traceCache[name] = res
	return sp, res
}

func benchTable1(b *testing.B, name string) {
	sp, res := recordedResult(b, name)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rerun, err := bench.ReplayTrace(sp, res.Trajectory, bench.Table1Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.RenderTable1([]*bench.BenchmarkResult{rerun}))
		}
	}
}

func BenchmarkTable1FIR(b *testing.B)        { benchTable1(b, "fir") }
func BenchmarkTable1IIR(b *testing.B)        { benchTable1(b, "iir") }
func BenchmarkTable1FFT(b *testing.B)        { benchTable1(b, "fft") }
func BenchmarkTable1HEVC(b *testing.B)       { benchTable1(b, "hevc") }
func BenchmarkTable1SqueezeNet(b *testing.B) { benchTable1(b, "squeezenet") }

func BenchmarkFigure1Surface(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := bench.RunFigure1(context.Background(), bench.Figure1Options{Seed: 1, Samples: 256, MinWL: 4, MaxWL: 12})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + s.RenderCSV())
		}
	}
}

func BenchmarkSpeedupModel(b *testing.B) {
	var rows []bench.SpeedupRow
	for _, name := range []string{"fir", "iir", "fft"} {
		sp, res := recordedResult(b, name)
		b.ResetTimer()
		row, err := bench.MeasureSpeedup(context.Background(), sp, res, 3, 1)
		if err != nil {
			b.Fatal(err)
		}
		rows = append(rows, row)
	}
	b.Log("\n" + bench.RenderSpeedup(rows))
	for i := 0; i < b.N; i++ {
		sp, res := recordedResult(b, "fir")
		if _, err := bench.MeasureSpeedup(context.Background(), sp, res, 3, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationNnMin(b *testing.B) {
	sp, res := recordedResult(b, "fir")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblateNnMin(sp, res.Trajectory, 3, []int{1, 2, 3})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.RenderAblation(rows))
		}
	}
}

func BenchmarkAblationVariogram(b *testing.B) {
	sp, res := recordedResult(b, "fft")
	kinds := []variogram.Kind{variogram.Power, variogram.Linear, variogram.Spherical, variogram.Exponential, variogram.Gaussian}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblateVariogram(sp, res.Trajectory, 3, kinds)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.RenderAblation(rows))
		}
	}
}

func BenchmarkAblationInterpolator(b *testing.B) {
	sp, res := recordedResult(b, "fir")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblateInterpolator(sp, res.Trajectory, 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.RenderAblation(rows))
		}
	}
}

// BenchmarkScalingStudy regenerates the p%-versus-Nv trend of Section IV
// ("when the number of variables increases ... the number of
// configurations that can be estimated increases") from the cached
// trajectories at d = 3.
func BenchmarkScalingStudy(b *testing.B) {
	names := []string{"fir", "iir", "fft", "hevc"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var rows []bench.ScalingRow
		for _, name := range names {
			sp, res := recordedResult(b, name)
			for _, row := range res.Rows {
				if row.D == 3 {
					rows = append(rows, bench.ScalingRow{
						Name: sp.Name, Nv: sp.Nv,
						Percent: row.Percent, MeanEps: row.MeanEps,
					})
				}
			}
		}
		if i == 0 {
			b.Log("\n" + bench.RenderScaling(rows, 3))
		}
	}
}

// --- Eq. 2 microbenchmarks: t_i (interpolation) and t_o (simulation) ---

func BenchmarkKrigingPredict(b *testing.B) {
	// One ordinary-kriging interpolation over 8 supports, the paper's
	// measured t_i ≈ 1 µs operation.
	xs := make([][]float64, 8)
	ys := make([]float64, 8)
	for i := range xs {
		xs[i] = []float64{float64(i), float64(i % 3)}
		ys[i] = float64(i * i)
	}
	o := &kriging.Ordinary{}
	q := []float64{3.5, 1.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Predict(xs, ys, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFIRSimulation(b *testing.B) {
	bm, err := signal.NewFIRBenchmark(1, 1024)
	if err != nil {
		b.Fatal(err)
	}
	cfg := space.Config{10, 12}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bm.NoisePower(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIIRSimulation(b *testing.B) {
	bm, err := signal.NewIIRBenchmark(1, 1024)
	if err != nil {
		b.Fatal(err)
	}
	cfg := space.Config{10, 10, 10, 10, 12}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bm.NoisePower(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFTSimulation(b *testing.B) {
	bm, err := signal.NewFFTBenchmark(1, 8)
	if err != nil {
		b.Fatal(err)
	}
	cfg := make(space.Config, bm.Nv())
	for i := range cfg {
		cfg[i] = 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bm.NoisePower(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHEVCSimulation(b *testing.B) {
	bm, err := hevc.NewBenchmark(1, 8)
	if err != nil {
		b.Fatal(err)
	}
	cfg := make(space.Config, bm.Nv())
	for i := range cfg {
		cfg[i] = 9
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bm.NoisePower(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSqueezeNetSimulation(b *testing.B) {
	bm, err := nn.NewSensitivityBenchmark(1, 20)
	if err != nil {
		b.Fatal(err)
	}
	cfg := make(space.Config, bm.Nv())
	for i := range cfg {
		cfg[i] = 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bm.Evaluate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluatorQuery(b *testing.B) {
	// A full evaluator round trip on a pre-warmed store: neighbour
	// search + kriging.
	sim := evaluator.SimulatorFunc{NumVars: 2, Fn: func(c space.Config) (float64, error) {
		return -float64(c[0]) - float64(c[1]), nil
	}}
	ev, err := evaluator.New(sim, evaluator.Options{D: 3, NnMin: 1, MaxSupport: 10})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		ev.Store().Add(space.Config{i % 8, i / 8}, -float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// (8, 2) is never stored, so every query runs neighbour search
		// plus a kriging solve.
		if _, err := ev.Evaluate(space.Config{8, 2}); err != nil {
			b.Fatal(err)
		}
	}
}
