# Developer entry points. Everything here is a thin wrapper over go(1)
# and the scripts/ gates so CI and local runs stay identical.

BIN        := bin
IMAGE      ?= evald
EVALD_ADDR ?= :8080
SIMD_ADDR  ?= :9090

.PHONY: build test test-full check bench-gate docker run-evald run-simd clean

# Build every command into ./bin.
build:
	go build -o $(BIN)/ ./cmd/...

# The PR-loop suite: race detector on, slow integration tests skipped.
test:
	go test -race -short ./...

# Everything, including the minutes-long bench integration tests.
test-full:
	go test -race ./...

# The full set of local gates, mirroring the CI `quick` job.
check:
	gofmt -l . | (! grep .) || (echo "gofmt needed"; exit 1)
	go vet ./...
	sh scripts/check_docs.sh
	sh scripts/check_allocs.sh
	go test -race -short ./...

# Bench-regression gate against the newest committed BENCH_pr*.json
# (see scripts/check_bench.sh for the waiver path).
bench-gate:
	sh scripts/check_bench.sh

# Container image for cmd/evald (distroless static, see Dockerfile).
docker:
	docker build -t $(IMAGE) .

# Run the service from source on $(EVALD_ADDR), unauthenticated, small
# FIR benchmark — the quickest way to poke the API locally.
run-evald:
	EVALD_ADDR=$(EVALD_ADDR) go run ./cmd/evald

# Run one remote simulation worker from source on $(SIMD_ADDR). Start a
# few (distinct SIMD_ADDR), then point evald at them with
# EVALD_SIM_WORKERS=http://127.0.0.1:9090,... — every worker must share
# SIMD_BENCH/SIMD_SIZE/SIMD_SEED with the pool.
run-simd:
	SIMD_ADDR=$(SIMD_ADDR) go run ./cmd/simd

clean:
	rm -rf $(BIN)
