// fft_wordlength: word-length optimisation of the 64-point fixed-point
// FFT (Nv = 10), the paper's showcase for how the interpolated share
// grows with the number of variables.
//
// The example records the simulation-only min+1 trajectory once, then
// replays it through the kriging decision rule at d = 2..5 and prints the
// Table I row of the FFT benchmark: the fraction of configurations that
// kriging answers without simulation and the interpolation error in
// equivalent bits (Eq. 11 of the paper).
//
// Run with:
//
//	go run ./examples/fft_wordlength
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/evaluator"
	"repro/internal/kriging"
	"repro/internal/optim"
	"repro/internal/signal"
)

func main() {
	log.SetFlags(0)
	b, err := signal.NewFFTBenchmark(1, 8)
	if err != nil {
		log.Fatal(err)
	}

	// Record the simulation-only trajectory (the paper's protocol).
	caching := evaluator.NewCachingSimulator(&signal.Simulator{B: b})
	rec := &evaluator.RecordingSimulator{Inner: caching}
	if _, err := repro.MinPlusOne(optim.OracleFunc(rec.Evaluate), optim.MinPlusOneOptions{
		LambdaMin: -1e-4,
		Bounds:    b.Bounds(),
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d configurations (%d distinct) on the min+1 trajectory\n\n",
		len(rec.Trace), caching.Misses())

	fmt.Println("  d    p(%)      j    max eps   mu eps   (eps in equivalent bits)")
	fmt.Println("------------------------------------------------------------------")
	for _, d := range []float64{2, 3, 4, 5} {
		row, err := repro.Replay(rec.Trace, repro.EvaluatorOptions{
			D: d, NnMin: 1, MaxSupport: 10,
			Interp:      &kriging.Ordinary{},
			Transform:   evaluator.NegPowerToDB,
			Untransform: evaluator.DBToNegPower,
		}, evaluator.ErrorBits)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%3.0f  %6.2f  %6.2f  %8.2f  %7.2f\n",
			d, row.Percent, row.MeanNeigh, row.MaxEps, row.MeanEps)
	}
	fmt.Println("\nWith ten variables most tested configurations have close neighbours,")
	fmt.Println("so the interpolated share is far higher than for the 2-variable FIR.")
}
