// iir_pipeline: the once-per-application variogram workflow of Section
// III-A on the 8th-order IIR benchmark.
//
// The paper notes that "the identification of the semi-variogram has to
// be done once for a particular metric and application". This example
// follows that recipe literally with the core pipeline: a Latin-hypercube
// pilot of real simulations, a single global variogram identification
// with a leave-one-out quality check, and a kriging evaluator that reuses
// the identified model (and the pilot simulations) for the whole
// optimisation run.
//
// Run with:
//
//	go run ./examples/iir_pipeline
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/evaluator"
	"repro/internal/optim"
	"repro/internal/signal"
)

func main() {
	log.SetFlags(0)
	b, err := signal.NewIIRBenchmark(1, 512)
	if err != nil {
		log.Fatal(err)
	}
	pipeline, err := core.New(&signal.Simulator{B: b}, b.Bounds(), core.Options{
		D:           3,
		Transform:   evaluator.NegPowerToDB,
		Untransform: evaluator.DBToNegPower,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: pilot simulations (space-filling Latin hypercube).
	if err := pipeline.RunPilot(24, 7); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pilot: %d simulated configurations\n", pipeline.PilotSize())

	// Step 2: identify the semivariogram once, with a quality check.
	id, err := pipeline.Identify()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("identified variogram: %s params=%v\n", id.Model.Name(), id.Model.Params())
	fmt.Printf("LOOCV over pilot: mean |err| %.2f dB, rms %.2f dB, bias %+.2f dB\n\n",
		id.CV.MeanAbs, id.CV.RMS, id.CV.MeanBias)

	// Step 3: optimise with the kriging evaluator built on that model.
	ev, err := pipeline.Evaluator()
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.MinPlusOne(repro.OracleFromEvaluator(ev), optim.MinPlusOneOptions{
		LambdaMin: -1e-4, // -40 dB
		Bounds:    b.Bounds(),
	})
	if err != nil {
		log.Fatal(err)
	}
	st := ev.Stats()
	fmt.Printf("optimised word-lengths: %v (total %d bits), lambda %.3g\n",
		res.WRes, int(optim.TotalBits(res.WRes)), res.Lambda)
	fmt.Printf("during optimisation: %d simulated, %d kriged (p = %.1f%%)\n",
		st.NSim, st.NInterp, st.PercentInterpolated())
}
