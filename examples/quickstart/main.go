// Quickstart: kriging-accelerated evaluation of a synthetic quality
// metric.
//
// The example wraps an "expensive" two-variable simulator in the
// kriging-based evaluator and walks a diagonal path through the
// configuration hypercube. After a few real simulations the evaluator
// starts answering from interpolation; the printout shows, per query,
// whether it simulated or kriged, and how close the kriged values are to
// the truth.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
	"repro/internal/space"
)

// expensiveSimulation stands in for an application-quality simulation:
// a smooth two-knob accuracy field λ(w0, w1) = -(2^-w0 + 2^-w1), the
// shape of a word-length noise surface.
func expensiveSimulation(cfg repro.Config) (float64, error) {
	return -(math.Exp2(-float64(cfg[0])) + math.Exp2(-float64(cfg[1]))), nil
}

func main() {
	log.SetFlags(0)
	sim := repro.SimulatorFunc{NumVars: 2, Fn: expensiveSimulation}

	ev, err := repro.NewEvaluator(sim, repro.EvaluatorOptions{
		D:     3, // interpolate from simulated configs within L1 distance 3
		NnMin: 1, // needs more than one neighbour
	})
	if err != nil {
		log.Fatal(err)
	}

	// Walk a zig-zag path of single-bit increments, the kind of path a
	// greedy word-length optimiser takes.
	cur := space.Config{4, 4}
	fmt.Println("query        source        lambda       truth        |err|")
	fmt.Println("-----------------------------------------------------------")
	for step := 0; step < 16; step++ {
		cfg := cur.Clone()
		res, err := ev.Evaluate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		truth, _ := expensiveSimulation(cfg)
		fmt.Printf("%-12s %-13s %-12.4g %-12.4g %.2g\n",
			cfg, res.Source, res.Lambda, truth, math.Abs(res.Lambda-truth))
		cur[step%2]++ // alternate which knob gains a bit
	}

	st := ev.Stats()
	fmt.Printf("\n%d queries: %d simulated, %d kriged (p = %.1f%%, mean support %.1f)\n",
		st.Total(), st.NSim, st.NInterp, st.PercentInterpolated(), st.MeanNeighbors())
}
