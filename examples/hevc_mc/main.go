// hevc_mc: the HEVC motion-compensation substrate on its own.
//
// The example drives the luma (8-tap, 23 knobs) and chroma (4-tap, 12
// knobs) fractional-pel interpolators directly: it sweeps a shared
// word-length across each datapath and prints the output noise power per
// fractional position, the raw material behind the paper's HEVC rows.
//
// Run with:
//
//	go run ./examples/hevc_mc
package main

import (
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/hevc"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/space"
)

func main() {
	log.SetFlags(0)
	r := rng.New(1)

	// --- Luma: one block, all nine non-integer quarter-pel positions.
	luma := hevc.NewInterp()
	src := dataset.Block(r, 15, 15, 0.999) // 8 + 8 - 1 window
	fmt.Println("luma 8-tap interpolation, uniform word-length sweep")
	fmt.Printf("%8s", "w\\frac")
	for fx := 1; fx <= 3; fx++ {
		for fy := 1; fy <= 3; fy++ {
			fmt.Printf("  (%d/4,%d/4)", fx, fy)
		}
	}
	fmt.Println()
	for _, w := range []int{4, 6, 8, 10, 12} {
		cfg := make(space.Config, luma.Nv())
		for i := range cfg {
			cfg[i] = w
		}
		fmt.Printf("%8d", w)
		for fx := 1; fx <= 3; fx++ {
			for fy := 1; fy <= 3; fy++ {
				mv := hevc.MotionVector{FracX: fx, FracY: fy}
				ref, err := luma.Reference(src, mv)
				if err != nil {
					log.Fatal(err)
				}
				out, err := luma.Fixed(cfg, src, mv)
				if err != nil {
					log.Fatal(err)
				}
				var fl, fr []float64
				for y := range out {
					fl = append(fl, out[y]...)
					fr = append(fr, ref[y]...)
				}
				p, err := metrics.NoisePower(fl, fr)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  %8.1f", metrics.DB(p))
			}
		}
		fmt.Println()
	}

	// --- Chroma: eighth-pel positions with the 4-tap filters.
	chroma := hevc.NewChromaInterp()
	csrc := dataset.Block(r, 11, 11, 0.999) // 8 + 4 - 1 window
	fmt.Println("\nchroma 4-tap interpolation (noise power in dB at w=8)")
	cfg := make(space.Config, chroma.Nv())
	for i := range cfg {
		cfg[i] = 8
	}
	fmt.Printf("%8s", "fy\\fx")
	for fx := 1; fx <= 7; fx += 2 {
		fmt.Printf("  %6d/8", fx)
	}
	fmt.Println()
	for fy := 1; fy <= 7; fy += 2 {
		fmt.Printf("%7d/8", fy)
		for fx := 1; fx <= 7; fx += 2 {
			mv := hevc.ChromaMV{FracX: fx, FracY: fy}
			ref, err := chroma.Reference(csrc, mv)
			if err != nil {
				log.Fatal(err)
			}
			out, err := chroma.Fixed(cfg, csrc, mv)
			if err != nil {
				log.Fatal(err)
			}
			var fl, fr []float64
			for y := range out {
				fl = append(fl, out[y]...)
				fr = append(fr, ref[y]...)
			}
			p, err := metrics.NoisePower(fl, fr)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %8.1f", metrics.DB(p))
		}
		fmt.Println()
	}
	fmt.Println("\nEach added bit buys ~6 dB; the half-pel positions use the longest")
	fmt.Println("filters and show the largest datapath noise.")
}
