// fir_wordlength: the paper's motivating use case on its first benchmark.
//
// The example optimises the two word-lengths of the 64-tap fixed-point
// FIR filter under a -40 dB output-noise constraint twice — once with
// plain simulation and once with the kriging-accelerated evaluator — and
// compares the resulting word-length vectors and the number of real
// simulations each run needed. The kriging run trades a small number of
// interpolation errors for roughly half the simulations, the paper's
// headline result for small benchmarks.
//
// Run with:
//
//	go run ./examples/fir_wordlength
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/evaluator"
	"repro/internal/optim"
	"repro/internal/signal"
	"repro/internal/space"
)

func main() {
	log.SetFlags(0)
	const lambdaMin = -1e-4 // -40 dB output noise power

	run := func(withKriging bool) (optim.MinPlusOneResult, evaluator.Stats) {
		b, err := signal.NewFIRBenchmark(1, 1024)
		if err != nil {
			log.Fatal(err)
		}
		opts := repro.EvaluatorOptions{}
		if withKriging {
			opts = repro.EvaluatorOptions{
				D: 3, NnMin: 1, MaxSupport: 10,
				// Noise powers span decades: krige the dB domain.
				Transform:   evaluator.NegPowerToDB,
				Untransform: evaluator.DBToNegPower,
			}
		}
		ev, err := repro.NewEvaluator(&signal.Simulator{B: b}, opts)
		if err != nil {
			log.Fatal(err)
		}
		res, err := repro.MinPlusOne(repro.OracleFromEvaluator(ev), optim.MinPlusOneOptions{
			LambdaMin: lambdaMin,
			Bounds:    space.UniformBounds(2, 2, 16),
		})
		if err != nil {
			log.Fatal(err)
		}
		return res, ev.Stats()
	}

	simRes, simStats := run(false)
	krigRes, krigStats := run(true)

	fmt.Println("64-tap FIR word-length optimisation, constraint -40 dB")
	fmt.Println()
	fmt.Printf("%-22s %-14s %-14s %6s %6s\n", "mode", "wres", "lambda", "Nsim", "Nkrig")
	fmt.Printf("%-22s %-14v %-14.3g %6d %6d\n",
		"simulation only", simRes.WRes, simRes.Lambda, simStats.NSim, simStats.NInterp)
	fmt.Printf("%-22s %-14v %-14.3g %6d %6d\n",
		"kriging (d=3)", krigRes.WRes, krigRes.Lambda, krigStats.NSim, krigStats.NInterp)
	fmt.Println()
	saved := simStats.NSim - krigStats.NSim
	fmt.Printf("simulations saved by kriging: %d of %d (%.0f%%)\n",
		saved, simStats.NSim, 100*float64(saved)/float64(simStats.NSim))
	fmt.Printf("word-length cost: %d bits (simulation) vs %d bits (kriging)\n",
		int(optim.TotalBits(simRes.WRes)), int(optim.TotalBits(krigRes.WRes)))
}
