// squeezenet_sensitivity: the paper's error-sensitivity benchmark.
//
// A SqueezeNet-style classifier runs over a synthetic image set; a
// Gaussian error source sits at the output of each of its ten layers.
// The steepest-descent budgeting algorithm finds, per layer, the maximal
// tolerated error power that keeps the classification agreement with the
// error-free reference above 90% — with the kriging evaluator replacing
// most of the expensive network simulations.
//
// Run with:
//
//	go run ./examples/squeezenet_sensitivity
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/evaluator"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/optim"
)

func main() {
	log.SetFlags(0)
	const (
		images = 120 // the paper uses 1000; 120 keeps the example snappy
		pclMin = 0.9
	)
	b, err := nn.NewSensitivityBenchmark(1, images)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := repro.NewEvaluator(b, repro.EvaluatorOptions{
		D: 3, NnMin: 1, MaxSupport: 10,
		// p_cl is a probability: clamp interpolated values into [0, 1].
		Transform:   evaluator.Identity,
		Untransform: evaluator.ClampProb,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.NoiseBudget(repro.OracleFromEvaluator(ev), optim.NoiseBudgetOptions{
		LambdaMin: pclMin,
		Bounds:    b.Bounds(),
	})
	if err != nil {
		log.Fatal(err)
	}
	st := ev.Stats()
	fmt.Printf("budgeted %d error sources over %d images, constraint p_cl >= %.2f\n",
		b.Nv(), images, pclMin)
	fmt.Printf("final agreement: %.3f\n", res.Lambda)
	fmt.Printf("oracle calls: %d (%d simulated, %d kriged — %.1f%% interpolated)\n\n",
		res.Evaluations, st.NSim, st.NInterp, st.PercentInterpolated())

	fmt.Println("layer     index   tolerated error power")
	fmt.Println("----------------------------------------")
	for i, name := range nn.LayerNames {
		fmt.Printf("%-8s %6d   %9.3g  (%.1f dB)\n",
			name, res.E[i], b.Power(res.E[i]), metrics.DB(b.Power(res.E[i])))
	}
	fmt.Println("\nLayers with large indices tolerate loud errors cheaply; the")
	fmt.Println("sensitive layers are where implementation effort must go.")
}
