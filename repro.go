// Package repro is the public facade of the reproduction of Bonnot,
// Menard and Desnos, "Fast Kriging-based Error Evaluation for Approximate
// Computing Systems" (DATE 2020).
//
// The package re-exports the pieces a downstream user composes:
//
//   - the kriging interpolators and semivariogram models
//     (internal/kriging, internal/variogram),
//   - the kriging-accelerated quality evaluator and its replay harness
//     (internal/evaluator),
//   - the optimisation algorithms the paper plugs the evaluator into
//     (internal/optim),
//   - the configuration-space primitives (internal/space).
//
// A minimal use looks like:
//
//	sim := evaluator.SimulatorFunc{NumVars: 2, Fn: mySimulation}
//	ev, _ := repro.NewEvaluator(sim, repro.EvaluatorOptions{D: 3})
//	res, _ := ev.Evaluate(space.Config{8, 12})
//	// res.Source tells whether the value was simulated or kriged.
//
// The five paper benchmarks and the Table I / Figure 1 harnesses live in
// internal/bench and are driven by the executables under cmd/.
package repro

import (
	"context"

	"repro/internal/core"
	"repro/internal/evaluator"
	"repro/internal/kriging"
	"repro/internal/optim"
	"repro/internal/space"
	"repro/internal/variogram"
)

// Config is an integer configuration vector of approximation knobs.
type Config = space.Config

// Bounds is an axis-aligned search box over configurations.
type Bounds = space.Bounds

// Evaluator is the kriging-accelerated quality evaluator (the paper's
// core contribution).
type Evaluator = evaluator.Evaluator

// EvaluatorOptions configures an Evaluator; the zero value of D disables
// interpolation (every query simulates).
type EvaluatorOptions = evaluator.Options

// Simulator measures the quality metric of one configuration.
type Simulator = evaluator.Simulator

// SimulatorFunc adapts a function to the Simulator interface.
type SimulatorFunc = evaluator.SimulatorFunc

// Result is the outcome of one evaluator query.
type Result = evaluator.Result

// Trace is a recorded optimisation trajectory for replay studies.
type Trace = evaluator.Trace

// Interpolator predicts a field value from scattered samples.
type Interpolator = kriging.Interpolator

// OrdinaryKriging is the interpolator of Eqs. 7-10.
type OrdinaryKriging = kriging.Ordinary

// SimpleKriging is the known-mean kriging variant.
type SimpleKriging = kriging.Simple

// VariogramModel is a fitted semivariogram.
type VariogramModel = variogram.Model

// Pipeline is the once-per-application workflow of Section III-A: pilot
// simulations, a single global variogram identification, and a kriging
// evaluator built on the identified model.
type Pipeline = core.Pipeline

// PipelineOptions configures a Pipeline.
type PipelineOptions = core.Options

// NewPipeline builds a pilot → identify → evaluate pipeline for one
// application simulator over its configuration bounds.
func NewPipeline(sim Simulator, bounds Bounds, opts PipelineOptions) (*Pipeline, error) {
	return core.New(sim, bounds, opts)
}

// NewEvaluator builds a kriging-accelerated evaluator around a simulator.
func NewEvaluator(sim Simulator, opts EvaluatorOptions) (*Evaluator, error) {
	return evaluator.New(sim, opts)
}

// Replay feeds a recorded trajectory through the kriging decision rule
// and reports the Table I statistics (p%, j̄, ε).
func Replay(trace Trace, opts EvaluatorOptions, kind evaluator.ErrorKind) (evaluator.ReplayRow, error) {
	return evaluator.Replay(trace, opts, kind)
}

// Engine is the request-oriented session API over an Evaluator: Submit /
// Wait futures, single-flight coalescing of identical concurrent misses,
// and bounded simulation admission (see evaluator.Engine).
type Engine = evaluator.Engine

// NewEngine builds a session engine over an evaluator; maxSims bounds
// the simulations in flight across all sessions (0: unbounded).
func NewEngine(ev *Evaluator, maxSims int) *Engine {
	return ev.Engine(maxSims)
}

// MinPlusOne runs the min+1 bit word-length optimisation (Algorithms 1-2)
// against any oracle, e.g. a kriging-accelerated evaluator adapted with
// OracleFromEvaluator. It is the background-context form of
// MinPlusOneContext.
func MinPlusOne(oracle optim.Oracle, opts optim.MinPlusOneOptions) (optim.MinPlusOneResult, error) {
	return optim.MinPlusOne(context.Background(), oracle, opts)
}

// MinPlusOneContext is MinPlusOne under a request context: cancelling
// ctx aborts the optimisation (and, with a context-aware simulator, the
// in-flight simulation) with ctx's error.
func MinPlusOneContext(ctx context.Context, oracle optim.Oracle, opts optim.MinPlusOneOptions) (optim.MinPlusOneResult, error) {
	return optim.MinPlusOne(ctx, oracle, opts)
}

// NoiseBudget runs the steepest-descent error-budgeting optimisation. It
// is the background-context form of NoiseBudgetContext.
func NoiseBudget(oracle optim.Oracle, opts optim.NoiseBudgetOptions) (optim.NoiseBudgetResult, error) {
	return optim.NoiseBudget(context.Background(), oracle, opts)
}

// NoiseBudgetContext is NoiseBudget under a request context.
func NoiseBudgetContext(ctx context.Context, oracle optim.Oracle, opts optim.NoiseBudgetOptions) (optim.NoiseBudgetResult, error) {
	return optim.NoiseBudget(ctx, oracle, opts)
}

// OracleFromEvaluator adapts an Evaluator to the optimisers' Oracle
// interface, discarding the provenance information. Queries run under
// the optimiser's request context.
func OracleFromEvaluator(ev *Evaluator) optim.Oracle {
	return optim.ContextOracleFunc(func(ctx context.Context, cfg space.Config) (float64, error) {
		res, err := ev.EvaluateContext(ctx, cfg)
		if err != nil {
			return 0, err
		}
		return res.Lambda, nil
	})
}
